//! The resident sweep server: durable multi-tenant job store, admission
//! control, and a TCP accept loop speaking the `atc-serve-v1` protocol.
//!
//! # Architecture
//!
//! One **accept thread** takes connections off a non-blocking
//! [`TcpListener`] and spawns one handler thread per client. One
//! **executor thread** drains the admitted-job queue in batches onto the
//! existing work-stealing [`Scheduler`] (with the PR 6 fault, deadline
//! and retry machinery attached). Handlers and executor share one
//! [`Mutex`]-guarded [`State`]: the job table, the FIFO queue, and the
//! per-tenant [`Manifest`] stores.
//!
//! # Durability
//!
//! Every admission appends a `queued` record to the submitting tenant's
//! manifest (`<store_dir>/<tenant>.jsonl`, flushed per record); every
//! terminal outcome appends the terminal record to *every* subscribed
//! tenant's manifest. A `kill -9` at any instant therefore loses
//! nothing admitted: [`Server::bind`] replays the stores, re-enqueues
//! keys whose latest record is still `queued` (in catalog order, so a
//! restarted sweep executes deterministically), reconciles tenants whose
//! store missed a terminal record another tenant's store has, and
//! resumes. Manifest recovery diagnostics land on the [`EventLog`] as
//! `recover` events rather than stderr.
//!
//! # Admission control
//!
//! A submit is rejected — with a `retry_after_ms` backpressure hint —
//! when the global queue bound or the tenant's queue bound is reached,
//! or when charging the job's instruction streams to the tenant would
//! exceed its [`TraceCache`] residency quota
//! ([`TraceCache::reserve`]). Resubmission of a known key is idempotent:
//! the tenant is attached to the existing job and no second execution
//! happens.
//!
//! There is no signal handling here (the workspace denies `unsafe`):
//! graceful drain is the protocol's `shutdown` op, and abrupt death is
//! just death — the store makes it safe.

use std::collections::{HashMap, VecDeque};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use atc_bench::json::Value;
use atc_bench::stream::{epoch_line, final_line, header_line, seal, unseal, SERVE_SCHEMA};
use atc_harness::{
    EventLog, FaultPlan, JobCtx, JobError, JobRun, Manifest, Metrics, Progress, Record, Scheduler,
};
use atc_obs::SnapshotStream;
use atc_workloads::trace::{CacheStats, StreamKey, TraceCache};

use crate::protocol::{decode_request, encode_reply, Reply, Request};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Scheduler worker threads.
    pub workers: usize,
    /// Maximum jobs queued (admitted, not yet running) across tenants.
    pub queue_bound: usize,
    /// Maximum queued jobs any single tenant may have.
    pub tenant_queue_bound: usize,
    /// Backpressure hint attached to bound/quota rejections.
    pub retry_after_ms: u64,
    /// Transient-failure retries per job (scheduler).
    pub retries: u32,
    /// Per-attempt deadline (scheduler watchdog).
    pub deadline: Option<Duration>,
    /// Retry backoff base (scheduler).
    pub backoff: Duration,
    /// Seed for backoff jitter and fault rolls.
    pub seed: u64,
    /// Fault plan injected around attempts (robustness smokes).
    pub fault_plan: Option<FaultPlan>,
    /// Directory holding one `<tenant>.jsonl` store per tenant.
    pub store_dir: PathBuf,
    /// Append a sealed `atc-serve-v1` message log here.
    pub log_path: Option<PathBuf>,
    /// Telemetry cadence for `subscribe` streams.
    pub cadence: Duration,
    /// Hold admitted jobs unexecuted until [`Server::release`] — lets
    /// tests fill the queue deterministically.
    pub hold: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            queue_bound: 1024,
            tenant_queue_bound: 1024,
            retry_after_ms: 50,
            retries: 0,
            deadline: None,
            backoff: Duration::from_millis(10),
            seed: 0,
            fault_plan: None,
            store_dir: PathBuf::from("serve-store"),
            log_path: None,
            cadence: Duration::from_millis(100),
            hold: false,
        }
    }
}

/// Type of the job-execution callback: `(tenant, key, payload, ctx)`.
pub type Runner<P> =
    Arc<dyn Fn(&str, &str, &P, &JobCtx) -> Result<Metrics, JobError> + Send + Sync>;

/// Type of the stream-enumeration callback (cache admission sizing).
pub type StreamsOf<P> = Arc<dyn Fn(&P) -> Vec<StreamKey> + Send + Sync>;

/// Type of the instruction-count callback (progress rate attribution).
pub type InstructionsOf<P> = Arc<dyn Fn(&P) -> u64 + Send + Sync>;

/// What the server serves: a fixed job catalog plus the callbacks that
/// execute and size its jobs.
#[derive(Clone)]
pub struct ServerSpec<P> {
    /// Every job the server will accept, `(key, payload)`. Keys are the
    /// deterministic sweep keys; submits of unknown keys are rejected.
    pub catalog: Vec<(String, P)>,
    /// Executes one job on a scheduler worker. The first argument is
    /// the owning tenant (for trace-cache attribution).
    pub runner: Runner<P>,
    /// The instruction streams a job consumes (for cache admission).
    pub streams_of: StreamsOf<P>,
    /// Measured instructions per job (drives the progress rate), if
    /// meaningful.
    pub instructions_of: Option<InstructionsOf<P>>,
    /// The shared, tenant-multiplexed trace cache.
    pub cache: Arc<TraceCache>,
}

impl<P> std::fmt::Debug for ServerSpec<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerSpec")
            .field("catalog", &self.catalog.len())
            .finish_non_exhaustive()
    }
}

/// Where a job is in its lifecycle.
#[derive(Debug, Clone)]
enum JobState {
    Queued,
    Running,
    Terminal(Record),
}

impl JobState {
    fn name(&self) -> &str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Terminal(r) => &r.status,
        }
    }
}

#[derive(Debug)]
struct JobEntry {
    state: JobState,
    /// Tenants subscribed to this job's outcome (first = owner charged
    /// for its cache residency).
    tenants: Vec<String>,
}

/// Everything the mutex guards.
struct State {
    jobs: HashMap<String, JobEntry>,
    queue: VecDeque<String>,
    manifests: HashMap<String, Manifest>,
    executions: u64,
    draining: bool,
}

/// Sealed append-only log of every protocol message, with a globally
/// monotone sequence number that survives restarts (the opener resumes
/// from the highest seq already in the file).
struct ServeLog {
    file: Mutex<std::fs::File>,
    seq: AtomicU64,
}

impl ServeLog {
    fn open(path: &Path) -> io::Result<ServeLog> {
        let mut next = 0u64;
        if let Ok(text) = std::fs::read_to_string(path) {
            for line in text.lines() {
                if let Ok(doc) = unseal(line) {
                    if let Some(x) = doc.get("seq").and_then(Value::as_f64) {
                        if x >= 0.0 && x.fract() == 0.0 {
                            next = next.max(x as u64 + 1);
                        }
                    }
                }
            }
        }
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(ServeLog {
            file: Mutex::new(file),
            seq: AtomicU64::new(next),
        })
    }

    /// Append one envelope. The seq is allocated *inside* the file lock
    /// so in-file order and seq order agree.
    fn log(&self, conn: u64, dir: &str, line: &str) {
        let mut file = self.file.lock().unwrap_or_else(|e| e.into_inner());
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let env = seal(&Value::Object(vec![
            (
                "schema".to_string(),
                Value::String(SERVE_SCHEMA.to_string()),
            ),
            ("seq".to_string(), Value::Number(seq as f64)),
            ("conn".to_string(), Value::Number(conn as f64)),
            ("dir".to_string(), Value::String(dir.to_string())),
            ("line".to_string(), Value::String(line.to_string())),
        ]));
        let _ = writeln!(file, "{env}");
        let _ = file.flush();
    }
}

struct Shared<P> {
    cfg: ServeConfig,
    spec: ServerSpec<P>,
    catalog: HashMap<String, P>,
    /// Catalog rank per key: recovered queues re-sort on this so a
    /// restarted sweep executes in the same deterministic order.
    rank: HashMap<String, usize>,
    state: Mutex<State>,
    /// Signals the executor that the queue gained work (or flags
    /// changed).
    work: Condvar,
    /// Signals result waiters that a job reached a terminal state.
    done: Condvar,
    progress: Arc<Progress>,
    events: Arc<EventLog>,
    /// Drain the queue, then exit (graceful shutdown).
    shutdown: AtomicBool,
    /// Abort now, abandoning the queue on disk (Drop / crash
    /// simulation).
    kill: AtomicBool,
    hold: AtomicBool,
    log: Option<ServeLog>,
}

impl<P> Shared<P> {
    fn stopping(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || self.kill.load(Ordering::SeqCst)
    }
}

/// What [`Server::wait`] reports after a drained shutdown.
#[derive(Debug, Clone)]
pub struct ServeSummary {
    /// Jobs executed by this server process (idempotent resubmissions
    /// and recovered terminal records do not count).
    pub executions: u64,
    /// Final shared-cache statistics (cross-tenant hit tally included).
    pub cache: CacheStats,
}

/// A running serve daemon. Bind with [`Server::bind`], then either
/// [`wait`](Server::wait) for a protocol-driven shutdown (the daemon
/// path) or drive it in-process from tests. Dropping the server without
/// `wait` *kills* it — queued work stays durable in the store, exactly
/// like a crash.
pub struct Server<P: Clone + Send + Sync + 'static> {
    shared: Arc<Shared<P>>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    executor: Option<JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl<P: Clone + Send + Sync + 'static> std::fmt::Debug for Server<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server").field("addr", &self.addr).finish()
    }
}

/// A tenant name is a path-safe identifier: it becomes a store file
/// name, so nothing but `[A-Za-z0-9_-]{1,64}` is allowed.
fn valid_tenant(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
}

impl<P: Clone + Send + Sync + 'static> Server<P> {
    /// Bind `addr` (port 0 picks an ephemeral port), recover the job
    /// store, and start the accept and executor threads.
    ///
    /// # Errors
    ///
    /// Socket bind/configure failures, store-directory creation, or
    /// store recovery I/O errors.
    pub fn bind(
        addr: impl ToSocketAddrs,
        cfg: ServeConfig,
        spec: ServerSpec<P>,
    ) -> io::Result<Server<P>> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        std::fs::create_dir_all(&cfg.store_dir)?;
        let log = match &cfg.log_path {
            Some(path) => Some(ServeLog::open(path)?),
            None => None,
        };
        let events = Arc::new(EventLog::default());
        let catalog: HashMap<String, P> = spec.catalog.iter().cloned().collect();
        let rank: HashMap<String, usize> = spec
            .catalog
            .iter()
            .enumerate()
            .map(|(i, (k, _))| (k.clone(), i))
            .collect();
        let hold = cfg.hold;
        let shared = Arc::new(Shared {
            cfg,
            spec,
            catalog,
            rank,
            state: Mutex::new(State {
                jobs: HashMap::new(),
                queue: VecDeque::new(),
                manifests: HashMap::new(),
                executions: 0,
                draining: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
            progress: Arc::new(Progress::new()),
            events,
            shutdown: AtomicBool::new(false),
            kill: AtomicBool::new(false),
            hold: AtomicBool::new(hold),
            log,
        });
        recover(&shared)?;

        let handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let shared = Arc::clone(&shared);
            let handlers = Arc::clone(&handlers);
            std::thread::Builder::new()
                .name("atc-serve-accept".into())
                .spawn(move || accept_loop(&listener, &shared, &handlers))?
        };
        let executor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("atc-serve-exec".into())
                .spawn(move || executor_loop(&shared))?
        };
        Ok(Server {
            shared,
            addr,
            accept: Some(accept),
            executor: Some(executor),
            handlers,
        })
    }

    /// The bound address (resolves `--port 0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The lifecycle event log (scheduler + manifest + recovery events).
    pub fn events(&self) -> Arc<EventLog> {
        Arc::clone(&self.shared.events)
    }

    /// The live progress registry the executor feeds.
    pub fn progress(&self) -> Arc<Progress> {
        Arc::clone(&self.shared.progress)
    }

    /// Jobs executed so far by this process.
    pub fn executions(&self) -> u64 {
        let state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        state.executions
    }

    /// Release a [`ServeConfig::hold`]: start executing queued jobs.
    pub fn release(&self) {
        self.shared.hold.store(false, Ordering::SeqCst);
        self.shared.work.notify_all();
    }

    /// Request a graceful local shutdown (same as the protocol op):
    /// drain the queue, then let [`wait`](Self::wait) return.
    pub fn shutdown(&self) {
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        state.draining = true;
        drop(state);
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.work.notify_all();
        self.shared.done.notify_all();
    }

    /// Block until a shutdown is requested (protocol `shutdown` op or
    /// [`shutdown`](Self::shutdown)), drain the queue, flush every
    /// store, and return the run summary.
    pub fn wait(mut self) -> ServeSummary {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.executor.take() {
            let _ = h.join();
        }
        // Executor drained; release the handler loops and join them.
        self.shared.kill.store(true, Ordering::SeqCst);
        self.shared.done.notify_all();
        let handles: Vec<_> = {
            let mut handlers = self.handlers.lock().unwrap_or_else(|e| e.into_inner());
            handlers.drain(..).collect()
        };
        for h in handles {
            let _ = h.join();
        }
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        for manifest in state.manifests.values_mut() {
            let _ = manifest.flush();
        }
        ServeSummary {
            executions: state.executions,
            cache: self.shared.spec.cache.stats(),
        }
    }
}

impl<P: Clone + Send + Sync + 'static> Drop for Server<P> {
    /// Dropping without [`wait`](Self::wait) is a *kill*, not a drain:
    /// threads stop as soon as they notice, queued jobs stay only in
    /// the durable store. Tests use this to simulate a crash.
    fn drop(&mut self) {
        self.shared.kill.store(true, Ordering::SeqCst);
        self.shared.work.notify_all();
        self.shared.done.notify_all();
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.executor.take() {
            let _ = h.join();
        }
        let handles: Vec<_> = {
            let mut handlers = self.handlers.lock().unwrap_or_else(|e| e.into_inner());
            handlers.drain(..).collect()
        };
        for h in handles {
            let _ = h.join();
        }
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        for manifest in state.manifests.values_mut() {
            let _ = manifest.flush();
        }
    }
}

/// Load every `<tenant>.jsonl` store, rebuild the job table, re-enqueue
/// still-queued keys in catalog order, and reconcile stores that missed
/// a terminal record another tenant's store has.
fn recover<P: Clone + Send + Sync + 'static>(shared: &Arc<Shared<P>>) -> io::Result<()> {
    let mut stores: Vec<(String, Manifest)> = Vec::new();
    let mut names: Vec<PathBuf> = std::fs::read_dir(&shared.cfg.store_dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "jsonl"))
        .collect();
    names.sort();
    for path in names {
        let Some(tenant) = path.file_stem().and_then(|s| s.to_str()).map(String::from) else {
            continue;
        };
        if !valid_tenant(&tenant) {
            continue;
        }
        let manifest = Manifest::open_with_events(&path, true, Some(Arc::clone(&shared.events)))?
            .with_flush_every(1);
        stores.push((tenant, manifest));
    }
    if stores.is_empty() {
        return Ok(());
    }

    let mut state = shared.state.lock().unwrap_or_else(|e| e.into_inner());
    // Pass 1: fold every store into the job table. A terminal record
    // anywhere beats `queued` records elsewhere (the terminal one is
    // newer by construction — jobs only move forward).
    for (tenant, manifest) in &stores {
        for record in manifest.records() {
            let entry = state
                .jobs
                .entry(record.key.clone())
                .or_insert_with(|| JobEntry {
                    state: JobState::Queued,
                    tenants: Vec::new(),
                });
            if !entry.tenants.contains(tenant) {
                entry.tenants.push(tenant.clone());
            }
            if !record.is_queued() {
                entry.state = JobState::Terminal(record.clone());
            }
        }
    }
    // Unknown keys cannot execute on this catalog: close them out as
    // cancelled so waiters don't hang forever.
    let unknown: Vec<String> = state
        .jobs
        .iter()
        .filter(|(k, e)| {
            matches!(e.state, JobState::Queued) && !shared.catalog.contains_key(k.as_str())
        })
        .map(|(k, _)| k.clone())
        .collect();
    for key in unknown {
        if let Some(e) = state.jobs.get_mut(&key) {
            e.state = JobState::Terminal(Record::cancelled(&key));
        }
    }
    // Pass 2: rebuild the queue (catalog order) and reconcile each
    // tenant's store to the resolved state.
    let mut queued: Vec<String> = state
        .jobs
        .iter()
        .filter(|(_, e)| matches!(e.state, JobState::Queued))
        .map(|(k, _)| k.clone())
        .collect();
    queued.sort_by_key(|k| shared.rank.get(k).copied().unwrap_or(usize::MAX));
    let recovered = queued.len();
    state.queue = queued.into();
    for (tenant, manifest) in &mut stores {
        let fixes: Vec<Record> = manifest
            .records()
            .iter()
            .filter(|r| r.is_queued())
            .filter_map(|r| match state.jobs.get(&r.key).map(|e| &e.state) {
                Some(JobState::Terminal(t)) => Some(t.clone()),
                _ => None,
            })
            .collect();
        for record in fixes {
            manifest.append(record)?;
        }
        let _ = manifest.flush();
        state.manifests.insert(
            tenant.clone(),
            std::mem::replace(
                manifest,
                // Placeholder never used: we drain `stores` right here.
                Manifest::open_with_events(
                    shared.cfg.store_dir.join(format!("{tenant}.reconcile.tmp")),
                    false,
                    None,
                )?,
            ),
        );
        let _ = std::fs::remove_file(shared.cfg.store_dir.join(format!("{tenant}.reconcile.tmp")));
    }
    if recovered > 0 {
        shared.work.notify_all();
    }
    Ok(())
}

/// The executor: waits for admitted work, drains the queue as one
/// batch, and runs it on the scheduler with the completion hook
/// streaming terminal records into every subscribed tenant's store.
fn executor_loop<P: Clone + Send + Sync + 'static>(shared: &Arc<Shared<P>>) {
    let mut scheduler = Scheduler::new(shared.cfg.workers)
        .with_retries(shared.cfg.retries)
        .with_backoff(shared.cfg.backoff, shared.cfg.seed)
        .with_events(Arc::clone(&shared.events));
    if let Some(deadline) = shared.cfg.deadline {
        scheduler = scheduler.with_deadline(deadline);
    }
    if let Some(plan) = &shared.cfg.fault_plan {
        scheduler = scheduler.with_faults(plan.clone());
    }
    loop {
        let batch: Vec<(String, P)> = {
            let mut state = shared.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if shared.kill.load(Ordering::SeqCst) {
                    return;
                }
                let held =
                    shared.hold.load(Ordering::SeqCst) && !shared.shutdown.load(Ordering::SeqCst);
                if !state.queue.is_empty() && !held {
                    break;
                }
                if shared.shutdown.load(Ordering::SeqCst) && state.queue.is_empty() {
                    return;
                }
                state = shared
                    .work
                    .wait_timeout(state, Duration::from_millis(50))
                    .unwrap_or_else(|e| e.into_inner())
                    .0;
            }
            let keys: Vec<String> = state.queue.drain(..).collect();
            for key in &keys {
                if let Some(e) = state.jobs.get_mut(key) {
                    e.state = JobState::Running;
                }
            }
            keys.into_iter()
                .filter_map(|k| shared.catalog.get(&k).map(|p| (k.clone(), p.clone())))
                .collect()
        };
        if batch.is_empty() {
            continue;
        }
        let runner = |key: &str, payload: &P, ctx: &JobCtx| {
            let owner = {
                let state = shared.state.lock().unwrap_or_else(|e| e.into_inner());
                state
                    .jobs
                    .get(key)
                    .and_then(|e| e.tenants.first().cloned())
                    .unwrap_or_default()
            };
            let result = (shared.spec.runner)(&owner, key, payload, ctx);
            if result.is_ok() {
                if let Some(instructions) = &shared.spec.instructions_of {
                    shared.progress.add_instructions(instructions(payload));
                }
            }
            result
        };
        let on_complete = |run: &JobRun<Metrics>| {
            let record = Record::from_run(run);
            let mut state = shared.state.lock().unwrap_or_else(|e| e.into_inner());
            state.executions += 1;
            let tenants = match state.jobs.get_mut(&record.key) {
                Some(entry) => {
                    entry.state = JobState::Terminal(record.clone());
                    entry.tenants.clone()
                }
                None => Vec::new(),
            };
            for tenant in tenants {
                if let Some(manifest) = state.manifests.get_mut(&tenant) {
                    let _ = manifest.append(record.clone());
                }
            }
            drop(state);
            shared.done.notify_all();
        };
        scheduler.run_hooked(&batch, &shared.progress, runner, on_complete);
    }
}

fn accept_loop<P: Clone + Send + Sync + 'static>(
    listener: &TcpListener,
    shared: &Arc<Shared<P>>,
    handlers: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    let mut next_conn = 0u64;
    loop {
        if shared.stopping() {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                next_conn += 1;
                let conn = next_conn;
                let shared = Arc::clone(shared);
                let handle = std::thread::Builder::new()
                    .name(format!("atc-serve-conn-{conn}"))
                    .spawn(move || handle_connection(&shared, stream, conn));
                if let Ok(handle) = handle {
                    handlers
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .push(handle);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => return,
        }
    }
}

fn handle_connection<P: Clone + Send + Sync + 'static>(
    shared: &Arc<Shared<P>>,
    stream: TcpStream,
    conn: u64,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    // One persistent line buffer: a read timeout leaves partial bytes
    // in it, and the next read_line continues appending — clearing it
    // per iteration would tear messages on slow clients.
    let mut buf = String::new();
    let mut expect_seq = 0u64;
    loop {
        buf.clear();
        loop {
            match reader.read_line(&mut buf) {
                Ok(0) => return, // client closed
                Ok(_) if buf.ends_with('\n') => break,
                Ok(_) => {} // mid-line EOF retry (shouldn't happen on TCP)
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    if shared.kill.load(Ordering::SeqCst) {
                        return;
                    }
                }
                Err(_) => return,
            }
        }
        let line = buf.trim_end_matches(['\n', '\r']).to_string();
        if line.is_empty() {
            continue;
        }
        let (seq, request) = match decode_request(&line) {
            Ok(pair) => pair,
            Err(e) => {
                let reply = Reply::Error {
                    message: format!("bad request: {e}"),
                };
                if write_reply(shared, &mut writer, conn, expect_seq, &reply).is_err() {
                    return;
                }
                continue;
            }
        };
        if let Some(log) = &shared.log {
            log.log(conn, "rx", &line);
        }
        if seq != expect_seq {
            let reply = Reply::Error {
                message: format!("seq {seq}, expected {expect_seq}"),
            };
            if write_reply(shared, &mut writer, conn, seq, &reply).is_err() {
                return;
            }
            continue;
        }
        expect_seq += 1;
        let closing = matches!(request, Request::Shutdown);
        match request {
            Request::Subscribe { keys, .. } => {
                if handle_subscribe(shared, &mut writer, conn, seq, &keys).is_err() {
                    return;
                }
            }
            other => {
                let reply = handle_request(shared, other);
                if write_reply(shared, &mut writer, conn, seq, &reply).is_err() {
                    return;
                }
            }
        }
        if closing || shared.kill.load(Ordering::SeqCst) {
            return;
        }
    }
}

fn write_line<P: Clone + Send + Sync + 'static>(
    shared: &Arc<Shared<P>>,
    writer: &mut TcpStream,
    conn: u64,
    line: &str,
) -> io::Result<()> {
    if let Some(log) = &shared.log {
        log.log(conn, "tx", line);
    }
    writeln!(writer, "{line}")
}

fn write_reply<P: Clone + Send + Sync + 'static>(
    shared: &Arc<Shared<P>>,
    writer: &mut TcpStream,
    conn: u64,
    seq: u64,
    reply: &Reply,
) -> io::Result<()> {
    write_line(shared, writer, conn, &encode_reply(seq, reply))
}

/// Serve one non-subscribe request against the shared state.
fn handle_request<P: Clone + Send + Sync + 'static>(
    shared: &Arc<Shared<P>>,
    request: Request,
) -> Reply {
    match request {
        Request::Submit { tenant, key } => handle_submit(shared, &tenant, &key),
        Request::Status => handle_status(shared),
        Request::Cancel { tenant, key } => handle_cancel(shared, &tenant, &key),
        Request::Results { keys, wait, .. } => handle_results(shared, &keys, wait),
        Request::Shutdown => {
            let draining = {
                let mut state = shared.state.lock().unwrap_or_else(|e| e.into_inner());
                state.draining = true;
                !state.queue.is_empty()
                    || state
                        .jobs
                        .values()
                        .any(|e| matches!(e.state, JobState::Running))
            };
            shared.shutdown.store(true, Ordering::SeqCst);
            shared.work.notify_all();
            shared.done.notify_all();
            Reply::Shutdown { draining }
        }
        Request::Subscribe { .. } => Reply::Error {
            message: "subscribe handled by the connection loop".to_string(),
        },
    }
}

fn rejected(key: &str, reason: &str, retry_after_ms: u64) -> Reply {
    Reply::Submit {
        key: key.to_string(),
        accepted: false,
        state: "rejected".to_string(),
        reason: reason.to_string(),
        retry_after_ms,
    }
}

fn handle_submit<P: Clone + Send + Sync + 'static>(
    shared: &Arc<Shared<P>>,
    tenant: &str,
    key: &str,
) -> Reply {
    if !valid_tenant(tenant) {
        return rejected(key, "invalid tenant name", 0);
    }
    let mut state = shared.state.lock().unwrap_or_else(|e| e.into_inner());
    // Idempotent resubmission: attach the tenant, mirror the current
    // record into its store, execute nothing new.
    if let Some(entry) = state.jobs.get(key) {
        let state_name = entry.state.name().to_string();
        let mirror = match &entry.state {
            JobState::Terminal(r) => r.clone(),
            _ => Record::queued(key),
        };
        let already = entry.tenants.contains(&tenant.to_string());
        if let Some(e) = state.jobs.get_mut(key) {
            if !already {
                e.tenants.push(tenant.to_string());
            }
        }
        if !already {
            // New subscriber: its store must learn about the job. A
            // quota reservation keeps the accounting honest (free if
            // the streams are already resident, which they are).
            let _ = append_tenant_record(shared, &mut state, tenant, &mirror);
        }
        return Reply::Submit {
            key: key.to_string(),
            accepted: true,
            state: state_name,
            reason: String::new(),
            retry_after_ms: 0,
        };
    }
    if state.draining {
        return rejected(key, "server shutting down", 0);
    }
    let Some(payload) = shared.catalog.get(key) else {
        return rejected(key, "unknown key", 0);
    };
    if state.queue.len() >= shared.cfg.queue_bound {
        return rejected(key, "queue full", shared.cfg.retry_after_ms);
    }
    let tenant_queued = state
        .queue
        .iter()
        .filter(|k| {
            state
                .jobs
                .get(*k)
                .is_some_and(|e| e.tenants.iter().any(|t| t == tenant))
        })
        .count();
    if tenant_queued >= shared.cfg.tenant_queue_bound {
        return rejected(key, "tenant queue full", shared.cfg.retry_after_ms);
    }
    let streams = (shared.spec.streams_of)(payload);
    if let Err(reject) = shared.spec.cache.reserve(tenant, &streams) {
        return rejected(key, &reject.to_string(), shared.cfg.retry_after_ms);
    }
    if append_tenant_record(shared, &mut state, tenant, &Record::queued(key)).is_err() {
        return rejected(key, "store append failed", shared.cfg.retry_after_ms);
    }
    state.jobs.insert(
        key.to_string(),
        JobEntry {
            state: JobState::Queued,
            tenants: vec![tenant.to_string()],
        },
    );
    state.queue.push_back(key.to_string());
    drop(state);
    shared.work.notify_all();
    Reply::Submit {
        key: key.to_string(),
        accepted: true,
        state: "queued".to_string(),
        reason: String::new(),
        retry_after_ms: 0,
    }
}

/// Append `record` to `tenant`'s store, opening (and registering) the
/// store on first use.
fn append_tenant_record<P: Clone + Send + Sync + 'static>(
    shared: &Arc<Shared<P>>,
    state: &mut State,
    tenant: &str,
    record: &Record,
) -> io::Result<()> {
    if !state.manifests.contains_key(tenant) {
        let path = shared.cfg.store_dir.join(format!("{tenant}.jsonl"));
        let manifest = Manifest::open_with_events(path, true, Some(Arc::clone(&shared.events)))?
            .with_flush_every(1);
        state.manifests.insert(tenant.to_string(), manifest);
    }
    state
        .manifests
        .get_mut(tenant)
        .expect("just inserted")
        .append(record.clone())
}

fn handle_status<P: Clone + Send + Sync + 'static>(shared: &Arc<Shared<P>>) -> Reply {
    let state = shared.state.lock().unwrap_or_else(|e| e.into_inner());
    let mut queued = 0u64;
    let mut running = 0u64;
    let mut ok = 0u64;
    let mut failed = 0u64;
    let mut cancelled = 0u64;
    for entry in state.jobs.values() {
        match &entry.state {
            JobState::Queued => queued += 1,
            JobState::Running => running += 1,
            JobState::Terminal(r) if r.is_ok() => ok += 1,
            JobState::Terminal(r) if r.status == "cancelled" => cancelled += 1,
            JobState::Terminal(_) => failed += 1,
        }
    }
    let cache = shared.spec.cache.stats();
    Reply::Status {
        counts: vec![
            ("queued".to_string(), queued),
            ("running".to_string(), running),
            ("done".to_string(), ok),
            ("failed".to_string(), failed),
            ("cancelled".to_string(), cancelled),
            ("executions".to_string(), state.executions),
            ("tenants".to_string(), state.manifests.len() as u64),
            ("cache.streams".to_string(), cache.streams as u64),
            (
                "cache.footprint_bytes".to_string(),
                cache.footprint_bytes as u64,
            ),
            ("cache.hits".to_string(), cache.hits),
            ("cache.misses".to_string(), cache.misses),
            (
                "cache.cross_tenant_hits".to_string(),
                cache.cross_owner_hits,
            ),
            ("cache.evictions".to_string(), cache.evictions),
        ],
    }
}

fn handle_cancel<P: Clone + Send + Sync + 'static>(
    shared: &Arc<Shared<P>>,
    _tenant: &str,
    key: &str,
) -> Reply {
    let mut state = shared.state.lock().unwrap_or_else(|e| e.into_inner());
    let Some(entry) = state.jobs.get(key) else {
        return Reply::Cancel {
            key: key.to_string(),
            cancelled: false,
            state: "unknown".to_string(),
        };
    };
    if !matches!(entry.state, JobState::Queued) {
        return Reply::Cancel {
            key: key.to_string(),
            cancelled: false,
            state: entry.state.name().to_string(),
        };
    }
    let record = Record::cancelled(key);
    let tenants = entry.tenants.clone();
    if let Some(e) = state.jobs.get_mut(key) {
        e.state = JobState::Terminal(record.clone());
    }
    state.queue.retain(|k| k != key);
    for tenant in tenants {
        let _ = append_tenant_record(shared, &mut state, &tenant, &record);
    }
    drop(state);
    shared.done.notify_all();
    Reply::Cancel {
        key: key.to_string(),
        cancelled: true,
        state: "cancelled".to_string(),
    }
}

fn handle_results<P: Clone + Send + Sync + 'static>(
    shared: &Arc<Shared<P>>,
    keys: &[String],
    wait: bool,
) -> Reply {
    let mut state = shared.state.lock().unwrap_or_else(|e| e.into_inner());
    loop {
        let mut records = Vec::new();
        let mut missing = Vec::new();
        let mut pending = false;
        for key in keys {
            match state.jobs.get(key).map(|e| &e.state) {
                Some(JobState::Terminal(r)) => records.push(r.to_json_line()),
                Some(_) => {
                    pending = true;
                    missing.push(key.clone());
                }
                None => missing.push(key.clone()),
            }
        }
        if !wait || !pending || shared.kill.load(Ordering::SeqCst) {
            return Reply::Results { records, missing };
        }
        state = shared
            .done
            .wait_timeout(state, Duration::from_millis(100))
            .unwrap_or_else(|e| e.into_inner())
            .0;
    }
}

/// Stream telemetry epochs (delta snapshots of the server's progress
/// registry) until every requested key is terminal or unknown, closing
/// with the exact Sampler sequence: one final real epoch and the
/// cumulative final line from the *same* snapshot, so delta sums
/// reconcile.
fn handle_subscribe<P: Clone + Send + Sync + 'static>(
    shared: &Arc<Shared<P>>,
    writer: &mut TcpStream,
    conn: u64,
    seq: u64,
    keys: &[String],
) -> io::Result<()> {
    write_reply(shared, writer, conn, seq, &Reply::Subscribing)?;
    let cadence = shared.cfg.cadence.max(Duration::from_millis(1));
    let cadence_us = u64::try_from(cadence.as_micros()).unwrap_or(u64::MAX);
    write_line(shared, writer, conn, &header_line(cadence_us))?;
    let mut stream = SnapshotStream::new();
    let started = std::time::Instant::now();
    let t_us = |s: &std::time::Instant| u64::try_from(s.elapsed().as_micros()).unwrap_or(u64::MAX);
    loop {
        let all_settled = {
            let state = shared.state.lock().unwrap_or_else(|e| e.into_inner());
            keys.iter().all(|k| {
                state
                    .jobs
                    .get(k)
                    .is_none_or(|e| matches!(e.state, JobState::Terminal(_)))
            })
        };
        if all_settled || shared.stopping() {
            break;
        }
        std::thread::sleep(cadence.min(Duration::from_millis(20)));
        let snap = shared.progress.snapshot();
        let delta = stream.next_delta(&snap);
        write_line(
            shared,
            writer,
            conn,
            &epoch_line(delta.epoch, t_us(&started), &delta.counters),
        )?;
    }
    let snap = shared.progress.snapshot();
    let delta = stream.next_delta(&snap);
    write_line(
        shared,
        writer,
        conn,
        &epoch_line(delta.epoch, t_us(&started), &delta.counters),
    )?;
    let counters: Vec<(&str, u64)> = snap.counters().iter().map(|&(n, v)| (n, v)).collect();
    write_line(
        shared,
        writer,
        conn,
        &final_line(stream.epochs(), t_us(&started), &counters),
    )?;
    write_reply(
        shared,
        writer,
        conn,
        seq,
        &Reply::SubscribeDone {
            epochs: stream.epochs(),
        },
    )
}
