//! Blocking client for the `atc-serve-v1` protocol.
//!
//! One [`Client`] owns one TCP connection. Requests carry a
//! monotonically increasing sequence number starting at 0; the server
//! echoes it in the reply, and the client verifies the echo so a
//! desynchronised or replayed stream fails loudly instead of silently
//! pairing the wrong reply with a request.
//!
//! [`subscribe`](Client::subscribe) interleaves raw telemetry lines
//! (the `atc-telemetry-stream-v1` header/epoch/final records) with
//! protocol replies on the same connection; the client tells them
//! apart with [`is_protocol_line`] and hands telemetry to the caller's
//! sink verbatim, so it can be piped straight into a `--telemetry-out`
//! file and validated by `check_bench_json --stream`.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::protocol::{decode_reply, encode_request, is_protocol_line, Reply, Request};

/// A connected `atc-serve-v1` client.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_seq: u64,
}

impl Client {
    /// Connect to a serve daemon.
    ///
    /// # Errors
    ///
    /// Propagates socket connect/configure failures.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let writer = TcpStream::connect(addr)?;
        writer.set_nodelay(true).ok();
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client {
            reader,
            writer,
            next_seq: 0,
        })
    }

    fn read_line(&mut self) -> Result<String, String> {
        let mut line = String::new();
        loop {
            match self.reader.read_line(&mut line) {
                Ok(0) => return Err("server closed the connection".to_string()),
                Ok(_) if line.ends_with('\n') => {
                    return Ok(line.trim_end_matches(['\n', '\r']).to_string());
                }
                Ok(_) => {}
                Err(e) => return Err(format!("read failed: {e}")),
            }
        }
    }

    fn expect_reply(&mut self, seq: u64, line: &str) -> Result<Reply, String> {
        let (reply_seq, reply) = decode_reply(line)?;
        if reply_seq != seq {
            return Err(format!("reply seq {reply_seq} does not echo request {seq}"));
        }
        if let Reply::Error { message } = &reply {
            return Err(format!("server error: {message}"));
        }
        Ok(reply)
    }

    /// Send one request and read its reply.
    ///
    /// # Errors
    ///
    /// Transport failures, malformed or tampered reply lines, sequence
    /// mismatches, and server-side `error` replies all surface here.
    pub fn call(&mut self, request: &Request) -> Result<Reply, String> {
        let seq = self.next_seq;
        self.next_seq += 1;
        let line = encode_request(seq, request);
        writeln!(self.writer, "{line}").map_err(|e| format!("write failed: {e}"))?;
        let line = self.read_line()?;
        self.expect_reply(seq, &line)
    }

    /// Submit one job, retrying while the server applies backpressure
    /// (`retry_after_ms > 0`), up to `max_retries` times. Returns the
    /// final submit reply (which may still be a hard rejection).
    ///
    /// # Errors
    ///
    /// Transport/protocol failures, or an unexpected reply kind.
    pub fn submit_with_retry(
        &mut self,
        tenant: &str,
        key: &str,
        max_retries: u32,
    ) -> Result<Reply, String> {
        let mut attempts = 0u32;
        loop {
            let reply = self.call(&Request::Submit {
                tenant: tenant.to_string(),
                key: key.to_string(),
            })?;
            match &reply {
                Reply::Submit {
                    accepted: false,
                    retry_after_ms,
                    ..
                } if *retry_after_ms > 0 && attempts < max_retries => {
                    attempts += 1;
                    std::thread::sleep(Duration::from_millis(*retry_after_ms));
                }
                Reply::Submit { .. } => return Ok(reply),
                other => return Err(format!("expected submit reply, got {other:?}")),
            }
        }
    }

    /// Fetch terminal records for `keys`. With `wait`, blocks until
    /// every known key settles. Returns `(records, missing)` where
    /// records are manifest JSONL lines in request order.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures, or an unexpected reply kind.
    pub fn results(
        &mut self,
        tenant: &str,
        keys: &[String],
        wait: bool,
    ) -> Result<(Vec<String>, Vec<String>), String> {
        let reply = self.call(&Request::Results {
            tenant: tenant.to_string(),
            keys: keys.to_vec(),
            wait,
        })?;
        match reply {
            Reply::Results { records, missing } => Ok((records, missing)),
            other => Err(format!("expected results reply, got {other:?}")),
        }
    }

    /// Fetch the server's status counters as `(name, value)` pairs.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures, or an unexpected reply kind.
    pub fn status(&mut self) -> Result<Vec<(String, u64)>, String> {
        match self.call(&Request::Status)? {
            Reply::Status { counts } => Ok(counts),
            other => Err(format!("expected status reply, got {other:?}")),
        }
    }

    /// Cancel a queued job. Returns whether it was cancelled and the
    /// job's (resulting) state.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures, or an unexpected reply kind.
    pub fn cancel(&mut self, tenant: &str, key: &str) -> Result<(bool, String), String> {
        let reply = self.call(&Request::Cancel {
            tenant: tenant.to_string(),
            key: key.to_string(),
        })?;
        match reply {
            Reply::Cancel {
                cancelled, state, ..
            } => Ok((cancelled, state)),
            other => Err(format!("expected cancel reply, got {other:?}")),
        }
    }

    /// Ask the server to drain and exit. Returns `true` if work was
    /// still in flight when the drain started.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures, or an unexpected reply kind.
    pub fn shutdown(&mut self) -> Result<bool, String> {
        match self.call(&Request::Shutdown)? {
            Reply::Shutdown { draining } => Ok(draining),
            other => Err(format!("expected shutdown reply, got {other:?}")),
        }
    }

    /// Subscribe to live progress for `keys`: every raw telemetry line
    /// the server streams is passed to `sink` until the stream closes.
    /// Returns the epoch count the server reported in `subscribe_done`.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures, sequence mismatches, or an
    /// unexpected reply kind.
    pub fn subscribe(
        &mut self,
        tenant: &str,
        keys: &[String],
        sink: &mut dyn FnMut(&str),
    ) -> Result<u64, String> {
        let seq = self.next_seq;
        self.next_seq += 1;
        let line = encode_request(
            seq,
            &Request::Subscribe {
                tenant: tenant.to_string(),
                keys: keys.to_vec(),
            },
        );
        writeln!(self.writer, "{line}").map_err(|e| format!("write failed: {e}"))?;
        let first = self.read_line()?;
        match self.expect_reply(seq, &first)? {
            Reply::Subscribing => {}
            other => return Err(format!("expected subscribing reply, got {other:?}")),
        }
        loop {
            let line = self.read_line()?;
            if is_protocol_line(&line) {
                match self.expect_reply(seq, &line)? {
                    Reply::SubscribeDone { epochs } => return Ok(epochs),
                    other => return Err(format!("expected subscribe_done, got {other:?}")),
                }
            }
            sink(&line);
        }
    }
}
