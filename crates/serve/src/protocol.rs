//! The `atc-serve-v1` wire protocol: line-delimited, checksummed JSONL
//! over TCP.
//!
//! Every message — request or reply — is one sealed JSON object per
//! line (the same whole-line FNV-1a seal the manifest and telemetry
//! stream use, via [`atc_bench::stream::seal`]):
//!
//! ```text
//! {"schema":"atc-serve-v1","seq":0,"op":"submit","tenant":"a","key":"base/mcf/…","ck":"…"}
//! {"schema":"atc-serve-v1","seq":0,"op":"submit","key":"base/mcf/…","accepted":true,…,"ck":"…"}
//! ```
//!
//! `seq` numbers each direction of a connection independently, starting
//! at 0 and strictly increasing; a reply carries the seq of the request
//! it answers. The `subscribe` op is the one exception to
//! request/reply pairing: after the `subscribing` reply the server
//! interleaves raw `atc-telemetry-stream-v1` lines (header, epochs,
//! final — themselves sealed) until a closing `subscribe_done` reply.
//!
//! The protocol is deliberately minimal: six request ops
//! (`submit`/`status`/`cancel`/`results`/`subscribe`/`shutdown`), fixed
//! fields, no negotiation. Unknown ops and damaged lines decode to
//! errors the caller surfaces; nothing panics on hostile input.

use atc_bench::json::Value;
use atc_bench::stream::{seal, unseal, SERVE_SCHEMA};

/// A client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Admit one catalog job for `tenant`. Idempotent per key: a
    /// resubmission of a queued/running/finished key attaches the
    /// tenant to the existing job instead of executing it again.
    Submit {
        /// Submitting tenant.
        tenant: String,
        /// Catalog job key (the suite's deterministic FNV-hashed key).
        key: String,
    },
    /// Queue/running/terminal counts plus cache and execution tallies.
    Status,
    /// Cancel a queued job for `tenant` (running/terminal jobs are not
    /// cancelled).
    Cancel {
        /// Requesting tenant.
        tenant: String,
        /// Job key to cancel.
        key: String,
    },
    /// Fetch terminal records for `keys`; with `wait` the server blocks
    /// until every submitted key is terminal (or it shuts down).
    Results {
        /// Requesting tenant.
        tenant: String,
        /// Job keys, in the order records should be returned.
        keys: Vec<String>,
        /// Block until all requested keys are terminal.
        wait: bool,
    },
    /// Stream telemetry epochs until every key in `keys` is terminal.
    Subscribe {
        /// Requesting tenant.
        tenant: String,
        /// Job keys whose completion ends the stream.
        keys: Vec<String>,
    },
    /// Drain the queue, flush every store, and exit.
    Shutdown,
}

/// A server reply.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// Outcome of a `submit`.
    Submit {
        /// Echoed job key.
        key: String,
        /// Whether the job was admitted (or already present).
        accepted: bool,
        /// Job state after the submit: `queued`, `running`, `ok`,
        /// `failed`, `panicked`, `cancelled`, or `rejected`.
        state: String,
        /// Rejection reason (empty when accepted).
        reason: String,
        /// Backpressure hint: retry after this many milliseconds
        /// (0 when accepted or when a retry cannot succeed).
        retry_after_ms: u64,
    },
    /// Named tallies: queue depths, executions, cache statistics.
    Status {
        /// `(name, value)` pairs in server-chosen order.
        counts: Vec<(String, u64)>,
    },
    /// Outcome of a `cancel`.
    Cancel {
        /// Echoed job key.
        key: String,
        /// Whether a queued job was cancelled.
        cancelled: bool,
        /// Job state after the cancel (`unknown` if never submitted).
        state: String,
    },
    /// Terminal records for a `results` request.
    Results {
        /// Verbatim sealed manifest record lines, in request key order.
        records: Vec<String>,
        /// Requested keys with no terminal record (never submitted, or
        /// still pending on a non-waiting request).
        missing: Vec<String>,
    },
    /// Subscription accepted; telemetry lines follow.
    Subscribing,
    /// Subscription closed after `epochs` telemetry epochs.
    SubscribeDone {
        /// Epoch lines streamed.
        epochs: u64,
    },
    /// Shutdown acknowledged.
    Shutdown {
        /// True when jobs were still queued/running and will drain.
        draining: bool,
    },
    /// The request could not be served (decode failure, unknown op…).
    Error {
        /// What went wrong.
        message: String,
    },
}

fn s(name: &str, value: &str) -> (String, Value) {
    (name.to_string(), Value::String(value.to_string()))
}

fn n(name: &str, value: u64) -> (String, Value) {
    (name.to_string(), Value::Number(value as f64))
}

fn b(name: &str, value: bool) -> (String, Value) {
    (name.to_string(), Value::Bool(value))
}

fn strings(name: &str, values: &[String]) -> (String, Value) {
    (
        name.to_string(),
        Value::Array(values.iter().map(|v| Value::String(v.clone())).collect()),
    )
}

fn envelope(seq: u64, op: &str, mut fields: Vec<(String, Value)>) -> String {
    let mut members = vec![
        (
            "schema".to_string(),
            Value::String(SERVE_SCHEMA.to_string()),
        ),
        ("seq".to_string(), Value::Number(seq as f64)),
        ("op".to_string(), Value::String(op.to_string())),
    ];
    members.append(&mut fields);
    seal(&Value::Object(members))
}

/// Decode a sealed envelope, returning `(seq, op, doc)`.
fn open_envelope(line: &str) -> Result<(u64, String, Value), String> {
    let doc = unseal(line)?;
    match doc.get("schema").and_then(Value::as_str) {
        Some(schema) if schema == SERVE_SCHEMA => {}
        other => return Err(format!("schema {other:?}, want {SERVE_SCHEMA:?}")),
    }
    let seq = field_u64(&doc, "seq")?;
    let op = field_str(&doc, "op")?;
    Ok((seq, op, doc))
}

fn field_str(doc: &Value, name: &str) -> Result<String, String> {
    doc.get(name)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or(format!("missing {name:?} string"))
}

fn field_u64(doc: &Value, name: &str) -> Result<u64, String> {
    let x = doc
        .get(name)
        .and_then(Value::as_f64)
        .ok_or(format!("missing {name:?} number"))?;
    if x < 0.0 || x.fract() != 0.0 || x > 2f64.powi(53) {
        return Err(format!("{name} = {x} is not a non-negative integer"));
    }
    Ok(x as u64)
}

fn field_bool(doc: &Value, name: &str) -> Result<bool, String> {
    match doc.get(name) {
        Some(Value::Bool(v)) => Ok(*v),
        _ => Err(format!("missing {name:?} bool")),
    }
}

fn field_strings(doc: &Value, name: &str) -> Result<Vec<String>, String> {
    let Some(Value::Array(items)) = doc.get(name) else {
        return Err(format!("missing {name:?} array"));
    };
    items
        .iter()
        .map(|v| {
            v.as_str()
                .map(str::to_string)
                .ok_or(format!("{name}: non-string element"))
        })
        .collect()
}

/// Render a request as one sealed wire line (no trailing newline).
pub fn encode_request(seq: u64, req: &Request) -> String {
    match req {
        Request::Submit { tenant, key } => {
            envelope(seq, "submit", vec![s("tenant", tenant), s("key", key)])
        }
        Request::Status => envelope(seq, "status", vec![]),
        Request::Cancel { tenant, key } => {
            envelope(seq, "cancel", vec![s("tenant", tenant), s("key", key)])
        }
        Request::Results { tenant, keys, wait } => envelope(
            seq,
            "results",
            vec![s("tenant", tenant), strings("keys", keys), b("wait", *wait)],
        ),
        Request::Subscribe { tenant, keys } => envelope(
            seq,
            "subscribe",
            vec![s("tenant", tenant), strings("keys", keys)],
        ),
        Request::Shutdown => envelope(seq, "shutdown", vec![]),
    }
}

/// Parse one sealed request line into `(seq, request)`.
///
/// # Errors
///
/// A message naming the defect: checksum/schema damage, a missing
/// field, or an unknown op.
pub fn decode_request(line: &str) -> Result<(u64, Request), String> {
    let (seq, op, doc) = open_envelope(line)?;
    let req = match op.as_str() {
        "submit" => Request::Submit {
            tenant: field_str(&doc, "tenant")?,
            key: field_str(&doc, "key")?,
        },
        "status" => Request::Status,
        "cancel" => Request::Cancel {
            tenant: field_str(&doc, "tenant")?,
            key: field_str(&doc, "key")?,
        },
        "results" => Request::Results {
            tenant: field_str(&doc, "tenant")?,
            keys: field_strings(&doc, "keys")?,
            wait: field_bool(&doc, "wait")?,
        },
        "subscribe" => Request::Subscribe {
            tenant: field_str(&doc, "tenant")?,
            keys: field_strings(&doc, "keys")?,
        },
        "shutdown" => Request::Shutdown,
        other => return Err(format!("unknown request op {other:?}")),
    };
    Ok((seq, req))
}

/// Render a reply as one sealed wire line (no trailing newline).
pub fn encode_reply(seq: u64, reply: &Reply) -> String {
    match reply {
        Reply::Submit {
            key,
            accepted,
            state,
            reason,
            retry_after_ms,
        } => envelope(
            seq,
            "submit",
            vec![
                s("key", key),
                b("accepted", *accepted),
                s("state", state),
                s("reason", reason),
                n("retry_after_ms", *retry_after_ms),
            ],
        ),
        Reply::Status { counts } => envelope(
            seq,
            "status",
            vec![(
                "counts".to_string(),
                Value::Object(
                    counts
                        .iter()
                        .map(|(name, v)| (name.clone(), Value::Number(*v as f64)))
                        .collect(),
                ),
            )],
        ),
        Reply::Cancel {
            key,
            cancelled,
            state,
        } => envelope(
            seq,
            "cancel",
            vec![s("key", key), b("cancelled", *cancelled), s("state", state)],
        ),
        Reply::Results { records, missing } => envelope(
            seq,
            "results",
            vec![strings("records", records), strings("missing", missing)],
        ),
        Reply::Subscribing => envelope(seq, "subscribing", vec![]),
        Reply::SubscribeDone { epochs } => {
            envelope(seq, "subscribe_done", vec![n("epochs", *epochs)])
        }
        Reply::Shutdown { draining } => envelope(seq, "shutdown", vec![b("draining", *draining)]),
        Reply::Error { message } => envelope(seq, "error", vec![s("message", message)]),
    }
}

/// Parse one sealed reply line into `(seq, reply)`.
///
/// # Errors
///
/// A message naming the defect: checksum/schema damage, a missing
/// field, or an unknown op.
pub fn decode_reply(line: &str) -> Result<(u64, Reply), String> {
    let (seq, op, doc) = open_envelope(line)?;
    let reply = match op.as_str() {
        "submit" => Reply::Submit {
            key: field_str(&doc, "key")?,
            accepted: field_bool(&doc, "accepted")?,
            state: field_str(&doc, "state")?,
            reason: field_str(&doc, "reason")?,
            retry_after_ms: field_u64(&doc, "retry_after_ms")?,
        },
        "status" => {
            let Some(Value::Object(members)) = doc.get("counts") else {
                return Err("missing \"counts\" object".to_string());
            };
            let counts = members
                .iter()
                .map(|(name, v)| {
                    field_u64(&Value::Object(vec![(name.clone(), v.clone())]), name)
                        .map(|x| (name.clone(), x))
                })
                .collect::<Result<Vec<_>, _>>()?;
            Reply::Status { counts }
        }
        "cancel" => Reply::Cancel {
            key: field_str(&doc, "key")?,
            cancelled: field_bool(&doc, "cancelled")?,
            state: field_str(&doc, "state")?,
        },
        "results" => Reply::Results {
            records: field_strings(&doc, "records")?,
            missing: field_strings(&doc, "missing")?,
        },
        "subscribing" => Reply::Subscribing,
        "subscribe_done" => Reply::SubscribeDone {
            epochs: field_u64(&doc, "epochs")?,
        },
        "shutdown" => Reply::Shutdown {
            draining: field_bool(&doc, "draining")?,
        },
        "error" => Reply::Error {
            message: field_str(&doc, "message")?,
        },
        other => return Err(format!("unknown reply op {other:?}")),
    };
    Ok((seq, reply))
}

/// Whether a wire line is an `atc-serve-v1` protocol message (as
/// opposed to an interleaved telemetry line inside a subscription).
pub fn is_protocol_line(line: &str) -> bool {
    // Cheap structural test: every envelope starts with the schema
    // member; telemetry lines never carry this schema.
    line.starts_with("{\"schema\":\"atc-serve-v1\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let cases = vec![
            Request::Submit {
                tenant: "a".into(),
                key: "base/mcf/s42/test/w1000/m10000".into(),
            },
            Request::Status,
            Request::Cancel {
                tenant: "b".into(),
                key: "k".into(),
            },
            Request::Results {
                tenant: "a".into(),
                keys: vec!["k1".into(), "k2".into()],
                wait: true,
            },
            Request::Subscribe {
                tenant: "a".into(),
                keys: vec![],
            },
            Request::Shutdown,
        ];
        for (i, req) in cases.into_iter().enumerate() {
            let line = encode_request(i as u64, &req);
            assert!(is_protocol_line(&line));
            let (seq, back) = decode_request(&line).expect("decodes");
            assert_eq!(seq, i as u64);
            assert_eq!(back, req);
        }
    }

    #[test]
    fn replies_round_trip_including_nested_sealed_records() {
        // A manifest record line contains quotes and a checksum of its
        // own; it must survive being wrapped in a JSON string.
        let record = "{\"v\":2,\"key\":\"a/b\",\"status\":\"ok\",\"ck\":\"0123456789abcdef\"}";
        let cases = vec![
            Reply::Submit {
                key: "k".into(),
                accepted: false,
                state: "rejected".into(),
                reason: "queue full".into(),
                retry_after_ms: 250,
            },
            Reply::Status {
                counts: vec![("queued".into(), 3), ("cache.streams".into(), 7)],
            },
            Reply::Cancel {
                key: "k".into(),
                cancelled: true,
                state: "cancelled".into(),
            },
            Reply::Results {
                records: vec![record.to_string()],
                missing: vec!["gone".into()],
            },
            Reply::Subscribing,
            Reply::SubscribeDone { epochs: 12 },
            Reply::Shutdown { draining: true },
            Reply::Error {
                message: "unknown op".into(),
            },
        ];
        for (i, reply) in cases.into_iter().enumerate() {
            let line = encode_reply(i as u64, &reply);
            let (seq, back) = decode_reply(&line).expect("decodes");
            assert_eq!(seq, i as u64);
            assert_eq!(back, reply);
        }
    }

    #[test]
    fn tampered_lines_are_rejected() {
        let line = encode_request(
            0,
            &Request::Submit {
                tenant: "a".into(),
                key: "k".into(),
            },
        );
        let flipped = line.replace("\"tenant\":\"a\"", "\"tenant\":\"b\"");
        assert!(decode_request(&flipped).unwrap_err().contains("checksum"));
        assert!(decode_request("not json").is_err());
        // Requests do not decode as replies and vice versa.
        let status_req = encode_request(1, &Request::Status);
        assert!(
            decode_reply(&status_req).is_err(),
            "status reply needs counts"
        );
    }

    #[test]
    fn telemetry_lines_are_not_protocol_lines() {
        assert!(!is_protocol_line(&atc_bench::stream::header_line(1000)));
        assert!(!is_protocol_line(&atc_bench::stream::epoch_line(0, 5, &[])));
    }
}
