//! End-to-end service tests over real TCP connections: idempotent
//! cross-client submission, deterministic admission control, crash
//! recovery from the durable store, tenant quotas with cross-tenant
//! cache sharing, live subscribe streams, and serve-log validation.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use atc_bench::stream::{check_serve_log, check_stream};
use atc_harness::{JobError, Metrics, Record};
use atc_serve::{Client, Reply, Request, ServeConfig, Server, ServerSpec};
use atc_workloads::trace::{StreamKey, TraceCache};
use atc_workloads::{BenchmarkId, Scale};

struct TempDir(PathBuf);
impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn temp_dir(name: &str) -> TempDir {
    let p = std::env::temp_dir().join(format!("atc-serve-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    std::fs::create_dir_all(&p).unwrap();
    TempDir(p)
}

/// Synthetic job: deterministic metrics, optional wall-clock stall,
/// and a declared stream footprint for admission accounting.
#[derive(Debug, Clone)]
struct Job {
    value: f64,
    delay: Duration,
    streams: Vec<StreamKey>,
}

fn key_for(bench: BenchmarkId, len: u64) -> StreamKey {
    StreamKey {
        bench,
        scale: Scale::Test,
        seed: 42,
        len,
    }
}

/// A spec whose runner touches the shared cache exactly like the sweep
/// path does: every declared stream is captured/reused under the
/// submitting tenant's identity.
fn spec(catalog: Vec<(String, Job)>, cache: Arc<TraceCache>) -> ServerSpec<Job> {
    let runner_cache = Arc::clone(&cache);
    ServerSpec {
        catalog,
        runner: Arc::new(move |tenant, _key, job: &Job, _ctx| {
            for key in &job.streams {
                let _ = runner_cache.get_owned(tenant, *key);
            }
            if !job.delay.is_zero() {
                std::thread::sleep(job.delay);
            }
            let mut m = Metrics::new();
            m.push("value", job.value);
            m.push("value_sq", job.value * job.value);
            Ok::<Metrics, JobError>(m)
        }),
        streams_of: Arc::new(|job: &Job| job.streams.clone()),
        instructions_of: Some(Arc::new(|job: &Job| {
            job.streams.iter().map(|s| s.len).sum()
        })),
        cache,
    }
}

fn plain_catalog(n: usize) -> Vec<(String, Job)> {
    (0..n)
        .map(|i| {
            (
                format!("job/{i}"),
                Job {
                    value: 10.0 + i as f64,
                    delay: Duration::ZERO,
                    streams: Vec::new(),
                },
            )
        })
        .collect()
}

fn cfg(store: &TempDir) -> ServeConfig {
    ServeConfig {
        workers: 2,
        store_dir: store.0.join("store"),
        cadence: Duration::from_millis(5),
        ..ServeConfig::default()
    }
}

#[test]
fn overlapping_clients_get_one_execution_per_key_and_identical_bytes() {
    let dir = temp_dir("overlap");
    let catalog = plain_catalog(4);
    let keys: Vec<String> = catalog.iter().map(|(k, _)| k.clone()).collect();
    let server = Server::bind(
        "127.0.0.1:0",
        cfg(&dir),
        spec(catalog, TraceCache::new().into()),
    )
    .expect("bind");
    let addr = server.local_addr();

    let workers: Vec<_> = (0..4)
        .map(|i| {
            let keys = keys.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                // Each client submits the full catalog, rotated so
                // submissions race in different orders.
                for j in 0..keys.len() {
                    let key = &keys[(i + j) % keys.len()];
                    let reply = client
                        .submit_with_retry("tenant-a", key, 50)
                        .expect("submit");
                    match reply {
                        Reply::Submit { accepted: true, .. } => {}
                        other => panic!("client {i}: submit rejected: {other:?}"),
                    }
                }
                let (records, missing) = client.results("tenant-a", &keys, true).expect("results");
                assert!(missing.is_empty(), "client {i}: missing {missing:?}");
                records
            })
        })
        .collect();
    let all: Vec<Vec<String>> = workers.into_iter().map(|w| w.join().unwrap()).collect();

    // Exactly one execution per FNV job key, no matter how many
    // clients raced...
    assert_eq!(server.executions(), 4, "idempotent dedup failed");
    // ...and every client saw byte-identical result lines.
    for other in &all[1..] {
        assert_eq!(&all[0], other, "clients disagree on result bytes");
    }
    for (i, line) in all[0].iter().enumerate() {
        let record = Record::from_json_line(line).expect("sealed record line");
        assert!(record.is_ok(), "job {i} not ok: {record:?}");
        assert_eq!(record.metrics.get("value"), Some(10.0 + i as f64));
    }

    let mut client = Client::connect(addr).expect("connect");
    client.shutdown().expect("shutdown");
    let summary = server.wait();
    assert_eq!(summary.executions, 4);
}

#[test]
fn admission_control_rejects_deterministically_and_accepted_jobs_complete() {
    let dir = temp_dir("admission");
    let mut config = cfg(&dir);
    config.queue_bound = 3;
    config.retry_after_ms = 7;
    config.hold = true; // keep jobs queued so the bound is exact
    let server = Server::bind(
        "127.0.0.1:0",
        config,
        spec(plain_catalog(5), TraceCache::new().into()),
    )
    .expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    for i in 0..5 {
        let reply = client
            .call(&Request::Submit {
                tenant: "t0".to_string(),
                key: format!("job/{i}"),
            })
            .expect("submit");
        let Reply::Submit {
            accepted,
            reason,
            retry_after_ms,
            ..
        } = reply
        else {
            panic!("not a submit reply");
        };
        if i < 3 {
            assert!(accepted, "job/{i} should be admitted");
        } else {
            assert!(!accepted, "job/{i} must hit the queue bound");
            assert_eq!(reason, "queue full");
            assert_eq!(retry_after_ms, 7, "backpressure hint must echo config");
        }
    }
    // Unknown keys are hard rejections: no retry hint.
    let reply = client
        .call(&Request::Submit {
            tenant: "t0".to_string(),
            key: "job/nope".to_string(),
        })
        .expect("submit");
    assert!(
        matches!(
            reply,
            Reply::Submit {
                accepted: false,
                retry_after_ms: 0,
                ..
            }
        ),
        "unknown key must reject without backpressure: {reply:?}"
    );

    server.release();
    let admitted: Vec<String> = (0..3).map(|i| format!("job/{i}")).collect();
    let (records, missing) = client.results("t0", &admitted, true).expect("results");
    assert!(missing.is_empty());
    assert_eq!(records.len(), 3);
    for line in &records {
        assert!(Record::from_json_line(line).unwrap().is_ok());
    }
    // With the queue drained the previously bounced key is admitted.
    let reply = client.submit_with_retry("t0", "job/3", 50).expect("submit");
    assert!(matches!(reply, Reply::Submit { accepted: true, .. }));
    let (records, _) = client
        .results("t0", &["job/3".to_string()], true)
        .expect("results");
    assert!(Record::from_json_line(&records[0]).unwrap().is_ok());
}

#[test]
fn killed_server_recovers_queue_from_store_and_resumes() {
    let dir = temp_dir("recover");
    let keys: Vec<String> = (0..3).map(|i| format!("job/{i}")).collect();
    {
        let mut config = cfg(&dir);
        config.hold = true; // admitted but never executed
        let server = Server::bind(
            "127.0.0.1:0",
            config,
            spec(plain_catalog(3), TraceCache::new().into()),
        )
        .expect("bind");
        let mut client = Client::connect(server.local_addr()).expect("connect");
        for key in &keys {
            let reply = client.submit_with_retry("t0", key, 10).expect("submit");
            assert!(matches!(reply, Reply::Submit { accepted: true, .. }));
        }
        assert_eq!(server.executions(), 0, "hold must prevent execution");
        drop(server); // kill -9 equivalent: queue survives only on disk
    }

    let server = Server::bind(
        "127.0.0.1:0",
        cfg(&dir),
        spec(plain_catalog(3), TraceCache::new().into()),
    )
    .expect("rebind");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let (records, missing) = client.results("t0", &keys, true).expect("results");
    assert!(missing.is_empty(), "recovery lost keys: {missing:?}");
    assert_eq!(server.executions(), 3, "recovered jobs must re-execute");
    for (i, line) in records.iter().enumerate() {
        let record = Record::from_json_line(line).expect("record");
        assert!(record.is_ok());
        assert_eq!(record.metrics.get("value"), Some(10.0 + i as f64));
    }
    // A second restart finds only terminal records: nothing re-runs.
    drop(server);
    let server = Server::bind(
        "127.0.0.1:0",
        cfg(&dir),
        spec(plain_catalog(3), TraceCache::new().into()),
    )
    .expect("rebind again");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let (records2, missing) = client.results("t0", &keys, true).expect("results");
    assert!(missing.is_empty());
    assert_eq!(server.executions(), 0, "terminal jobs must not re-run");
    assert_eq!(records, records2, "recovered records must be byte-stable");
}

#[test]
fn tenant_quota_rejects_and_shared_streams_hit_across_tenants() {
    let dir = temp_dir("quota");
    let s1 = key_for(BenchmarkId::Mcf, 2000);
    let s2 = key_for(BenchmarkId::Xalancbmk, 2000);
    let per_stream = TraceCache::stream_bytes(s1);
    let cache: Arc<TraceCache> =
        Arc::new(TraceCache::new().with_owner_quota(per_stream + per_stream / 2));
    let catalog = vec![
        (
            "job/a".to_string(),
            Job {
                value: 1.0,
                delay: Duration::ZERO,
                streams: vec![s1],
            },
        ),
        (
            "job/b".to_string(),
            Job {
                value: 2.0,
                delay: Duration::ZERO,
                streams: vec![s2],
            },
        ),
        (
            "job/c".to_string(),
            Job {
                value: 3.0,
                delay: Duration::ZERO,
                streams: vec![s1], // same stream as job/a
            },
        ),
    ];
    let mut config = cfg(&dir);
    config.workers = 1; // serialize so the cross-tenant hit is deterministic
    let server = Server::bind("127.0.0.1:0", config, spec(catalog, cache)).expect("bind");
    let mut alice = Client::connect(server.local_addr()).expect("connect");
    let mut bob = Client::connect(server.local_addr()).expect("connect");

    let reply = alice.call(&Request::Submit {
        tenant: "alice".to_string(),
        key: "job/a".to_string(),
    });
    assert!(matches!(reply, Ok(Reply::Submit { accepted: true, .. })));
    // Second distinct stream blows alice's residency quota.
    let reply = alice
        .call(&Request::Submit {
            tenant: "alice".to_string(),
            key: "job/b".to_string(),
        })
        .expect("submit");
    let Reply::Submit {
        accepted, reason, ..
    } = reply
    else {
        panic!("not a submit reply")
    };
    assert!(!accepted, "quota must reject job/b");
    assert!(reason.contains("quota"), "reason was {reason:?}");
    // Bob has his own quota; his job reuses alice's stream.
    let reply = bob.submit_with_retry("bob", "job/c", 10).expect("submit");
    assert!(matches!(reply, Reply::Submit { accepted: true, .. }));

    let (_, missing) = alice
        .results("alice", &["job/a".to_string()], true)
        .expect("results");
    assert!(missing.is_empty());
    let (_, missing) = bob
        .results("bob", &["job/c".to_string()], true)
        .expect("results");
    assert!(missing.is_empty());

    let counts = alice.status().expect("status");
    let get = |name: &str| {
        counts
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| panic!("missing status counter {name}"))
    };
    assert_eq!(get("executions"), 2);
    assert_eq!(get("cache.streams"), 1, "one shared stream resident");
    assert!(
        get("cache.cross_tenant_hits") >= 1,
        "bob reusing alice's stream must tally a cross-tenant hit: {counts:?}"
    );
}

#[test]
fn subscribe_streams_valid_telemetry_and_serve_log_checks_out() {
    let dir = temp_dir("subscribe");
    let log_path = dir.0.join("serve-log.jsonl");
    let catalog = vec![(
        "job/slow".to_string(),
        Job {
            value: 5.0,
            delay: Duration::from_millis(60),
            streams: Vec::new(),
        },
    )];
    let mut config = cfg(&dir);
    config.log_path = Some(log_path.clone());
    let server = Server::bind(
        "127.0.0.1:0",
        config,
        spec(catalog, TraceCache::new().into()),
    )
    .expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let keys = vec!["job/slow".to_string()];
    let reply = client
        .submit_with_retry("t0", &keys[0], 10)
        .expect("submit");
    assert!(matches!(reply, Reply::Submit { accepted: true, .. }));

    let mut telemetry = String::new();
    let epochs = client
        .subscribe("t0", &keys, &mut |line| {
            telemetry.push_str(line);
            telemetry.push('\n');
        })
        .expect("subscribe");
    assert!(epochs >= 1, "at least the closing epoch streams");
    let summary = check_stream(&telemetry, 1).expect("telemetry must validate");
    assert!(summary.contains("epoch"), "summary was {summary:?}");

    let (records, _) = client.results("t0", &keys, true).expect("results");
    assert!(Record::from_json_line(&records[0]).unwrap().is_ok());
    client.shutdown().expect("shutdown");
    server.wait();

    let text = std::fs::read_to_string(&log_path).expect("serve log written");
    let summary = check_serve_log(&text).expect("serve log must validate");
    assert!(summary.contains("rx"), "summary was {summary:?}");
}
