#![warn(missing_docs)]
#![deny(unsafe_code)]

//! The paper's contribution: address-translation-conscious caching and
//! prefetching.
//!
//! * [`tpolicy`] — **T-DRRIP**, **T-SHiP** and **T-Hawkeye**: wrappers
//!   over the baseline policies that (a) insert *leaf-level translation*
//!   fills with the lowest eviction priority (RRPV=0), (b) insert *replay
//!   load* fills at the L2C with the highest eviction priority (RRPV=3,
//!   because replay blocks are dead), and (c) switch SHiP/Hawkeye to the
//!   per-class translation-conscious signatures.
//! * [`atp`] — the **Address-Translation-initiated replay-load
//!   Prefetcher**: when a page walk's *leaf* PTE read hits at L2C or LLC,
//!   the corresponding replay data block is prefetched immediately,
//!   inserted with eviction priority. Non-speculative, hence 100 %
//!   accurate.
//! * [`tempo`] — **TEMPO** (Bhattacharjee, ASPLOS 2017): when the leaf
//!   PTE read goes all the way to DRAM, the memory controller prefetches
//!   the replay data block back-to-back with the PTE.
//! * [`ideal`] — the Fig 2 oracle filters (ideal L2C/LLC for
//!   translations / replays / both).
//! * [`Enhancement`] — the paper's cumulative configuration ladder
//!   (baseline → T-DRRIP → +T-SHiP → +ATP → +TEMPO) used across the
//!   evaluation.

pub mod atp;
pub mod dppred;
pub mod ideal;
pub mod tempo;
pub mod tpolicy;

pub use atp::{Atp, AtpPrefetch};
pub use dppred::{CbPredPolicy, DpPred};
pub use ideal::IdealConfig;
pub use tempo::{Tempo, TempoPrefetch};
pub use tpolicy::{TDrrip, THawkeye, TShip};

use atc_cache::policy::{Drrip, Hawkeye, Lru, PolicyImpl, ReplacementPolicy, Ship, Srrip};
use atc_types::SignatureMode;

/// The paper's cumulative enhancement ladder (Fig 14).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Enhancement {
    /// DRRIP at L2C, SHiP at LLC — the paper's strong baseline.
    #[default]
    Baseline,
    /// + T-DRRIP at the L2C.
    TDrrip,
    /// + T-SHiP at the LLC (includes T-DRRIP).
    TShip,
    /// + the ATP prefetcher (includes T-DRRIP and T-SHiP).
    Atp,
    /// + TEMPO at the DRAM controller (includes everything).
    Tempo,
}

impl Enhancement {
    /// All steps of the ladder in order.
    pub const ALL: [Enhancement; 5] = [
        Enhancement::Baseline,
        Enhancement::TDrrip,
        Enhancement::TShip,
        Enhancement::Atp,
        Enhancement::Tempo,
    ];

    /// Is T-DRRIP active at the L2C?
    pub fn has_tdrrip(self) -> bool {
        self != Enhancement::Baseline
    }

    /// Is T-SHiP active at the LLC?
    pub fn has_tship(self) -> bool {
        matches!(
            self,
            Enhancement::TShip | Enhancement::Atp | Enhancement::Tempo
        )
    }

    /// Is the ATP prefetcher active?
    pub fn has_atp(self) -> bool {
        matches!(self, Enhancement::Atp | Enhancement::Tempo)
    }

    /// Is TEMPO active at the DRAM controller?
    pub fn has_tempo(self) -> bool {
        self == Enhancement::Tempo
    }

    /// Label used in report tables.
    pub fn label(self) -> &'static str {
        match self {
            Enhancement::Baseline => "baseline",
            Enhancement::TDrrip => "T-DRRIP",
            Enhancement::TShip => "+T-SHiP",
            Enhancement::Atp => "+ATP",
            Enhancement::Tempo => "+TEMPO",
        }
    }
}

/// Selection of an LLC (or L2C) replacement policy by name, spanning the
/// paper's baselines and enhanced variants. Used by the experiment
/// binaries (Figs 4, 6, 12) and the simulator builder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyChoice {
    /// True LRU.
    Lru,
    /// Static RRIP.
    Srrip,
    /// Dynamic RRIP (set dueling).
    Drrip,
    /// SHiP with original IP signatures.
    Ship,
    /// Hawkeye with original IP signatures.
    Hawkeye,
    /// SHiP with per-class signatures only (the paper's "NewSign" step of
    /// Fig 12, without the RRPV=0 translation insertion).
    ShipNewSign,
    /// Full T-SHiP (new signatures + leaf translations at RRPV=0).
    TShip,
    /// Full T-Hawkeye.
    THawkeye,
    /// T-DRRIP (used at the L2C).
    TDrrip,
    /// Fig 10 mis-configuration: T-DRRIP that also inserts replay loads
    /// at RRPV=0, demonstrating why replays must insert dead.
    TDrripReplayZero,
    /// Fig 10 mis-configuration: T-SHiP with demand replay loads forced
    /// to RRPV=0.
    TShipReplayZero,
    /// Ablation: T-SHiP's RRPV=0 translation pinning *without* the
    /// per-class signatures.
    TShipPinOnly,
}

impl PolicyChoice {
    /// Instantiate the policy for a `sets × ways` cache.
    pub fn build(self, sets: usize, ways: usize) -> Box<dyn ReplacementPolicy> {
        match self {
            PolicyChoice::Lru => Box::new(Lru::new(sets, ways)),
            PolicyChoice::Srrip => Box::new(Srrip::new(sets, ways)),
            PolicyChoice::Drrip => Box::new(Drrip::new(sets, ways)),
            PolicyChoice::Ship => Box::new(Ship::new(sets, ways)),
            PolicyChoice::Hawkeye => Box::new(Hawkeye::new(sets, ways)),
            PolicyChoice::ShipNewSign => {
                Box::new(Ship::with_mode(sets, ways, SignatureMode::PerClass))
            }
            PolicyChoice::TShip => Box::new(TShip::new(sets, ways)),
            PolicyChoice::THawkeye => Box::new(THawkeye::new(sets, ways)),
            PolicyChoice::TDrrip => Box::new(TDrrip::new(sets, ways)),
            PolicyChoice::TDrripReplayZero => Box::new(TDrrip::with_replay_rrpv(sets, ways, 0)),
            PolicyChoice::TShipReplayZero => {
                Box::new(TShip::with_forced_replay_rrpv(sets, ways, 0))
            }
            PolicyChoice::TShipPinOnly => Box::new(TShip::with_signature_mode(
                sets,
                ways,
                SignatureMode::IpOnly,
            )),
        }
    }

    /// Instantiate the policy behind the cache core's static-dispatch
    /// wrapper: the stock policies land in their concrete
    /// [`PolicyImpl`] variants (keeping every policy callback on the
    /// simulator's hot path inlinable), the T-policies and Hawkeye fall
    /// back to virtual dispatch.
    pub fn build_impl(self, sets: usize, ways: usize) -> PolicyImpl {
        match self {
            PolicyChoice::Lru => Lru::new(sets, ways).into(),
            PolicyChoice::Srrip => Srrip::new(sets, ways).into(),
            PolicyChoice::Drrip => Drrip::new(sets, ways).into(),
            PolicyChoice::Ship => Ship::new(sets, ways).into(),
            PolicyChoice::ShipNewSign => {
                Ship::with_mode(sets, ways, SignatureMode::PerClass).into()
            }
            _ => self.build(sets, ways).into(),
        }
    }

    /// Label used in report tables.
    pub fn label(self) -> &'static str {
        match self {
            PolicyChoice::Lru => "LRU",
            PolicyChoice::Srrip => "SRRIP",
            PolicyChoice::Drrip => "DRRIP",
            PolicyChoice::Ship => "SHiP",
            PolicyChoice::Hawkeye => "Hawkeye",
            PolicyChoice::ShipNewSign => "SHiP+NewSign",
            PolicyChoice::TShip => "T-SHiP",
            PolicyChoice::THawkeye => "T-Hawkeye",
            PolicyChoice::TDrrip => "T-DRRIP",
            PolicyChoice::TDrripReplayZero => "T-DRRIP(R=0)",
            PolicyChoice::TShipReplayZero => "T-SHiP(R=0)",
            PolicyChoice::TShipPinOnly => "T-SHiP(pin-only)",
        }
    }

    /// The policies compared in Figs 4 and 6.
    pub const FIG4_SET: [PolicyChoice; 5] = [
        PolicyChoice::Lru,
        PolicyChoice::Srrip,
        PolicyChoice::Drrip,
        PolicyChoice::Ship,
        PolicyChoice::Hawkeye,
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_flags_are_cumulative() {
        assert!(!Enhancement::Baseline.has_tdrrip());
        assert!(Enhancement::TDrrip.has_tdrrip());
        assert!(!Enhancement::TDrrip.has_tship());
        assert!(Enhancement::TShip.has_tdrrip());
        assert!(Enhancement::TShip.has_tship());
        assert!(!Enhancement::TShip.has_atp());
        assert!(Enhancement::Atp.has_atp());
        assert!(!Enhancement::Atp.has_tempo());
        assert!(Enhancement::Tempo.has_atp());
        assert!(Enhancement::Tempo.has_tempo());
    }

    #[test]
    fn all_policies_build() {
        for p in [
            PolicyChoice::Lru,
            PolicyChoice::Srrip,
            PolicyChoice::Drrip,
            PolicyChoice::Ship,
            PolicyChoice::Hawkeye,
            PolicyChoice::ShipNewSign,
            PolicyChoice::TShip,
            PolicyChoice::THawkeye,
            PolicyChoice::TDrrip,
            PolicyChoice::TDrripReplayZero,
            PolicyChoice::TShipReplayZero,
            PolicyChoice::TShipPinOnly,
        ] {
            let b = p.build(64, 8);
            assert!(!b.name().is_empty());
            assert!(!p.label().is_empty());
        }
    }
}
