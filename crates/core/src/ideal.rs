//! Ideal-cache oracles for the opportunity study (Fig 2).
//!
//! The paper sizes the headroom by giving selected classes a 100 % hit
//! rate at the L2C and/or LLC: a filtered access is answered with the
//! cache's hit latency, while the underlying miss is still sent through
//! the MSHRs so bandwidth pressure remains realistic. [`IdealConfig`]
//! describes which classes are idealised at which level; the simulator
//! consults it in front of each lookup.

use atc_types::{AccessClass, MemLevel};

/// Which traffic classes get an oracle 100 % hit rate, per level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IdealConfig {
    /// Ideal L2C for leaf-level translations.
    pub l2c_translations: bool,
    /// Ideal L2C for replay loads.
    pub l2c_replays: bool,
    /// Ideal LLC for leaf-level translations.
    pub llc_translations: bool,
    /// Ideal LLC for replay loads.
    pub llc_replays: bool,
}

impl IdealConfig {
    /// No idealisation (the real machine).
    pub fn none() -> Self {
        IdealConfig::default()
    }

    /// Fig 2's "LLC(T)": ideal LLC for leaf translations.
    pub fn llc_translations() -> Self {
        IdealConfig {
            llc_translations: true,
            ..Default::default()
        }
    }

    /// Fig 2's "LLC(R)": ideal LLC for replay loads.
    pub fn llc_replays() -> Self {
        IdealConfig {
            llc_replays: true,
            ..Default::default()
        }
    }

    /// Fig 2's "LLC(TR)": ideal LLC for both.
    pub fn llc_both() -> Self {
        IdealConfig {
            llc_translations: true,
            llc_replays: true,
            ..Default::default()
        }
    }

    /// Fig 2's "L2C(T)+LLC(TR)" style points: ideal L2C for translations
    /// on top of an ideal LLC for both.
    pub fn l2c_translations_llc_both() -> Self {
        IdealConfig {
            l2c_translations: true,
            llc_translations: true,
            llc_replays: true,
            ..Default::default()
        }
    }

    /// Ideal L2C for replays only (Fig 2's L2C(R) point), LLC real.
    pub fn l2c_replays() -> Self {
        IdealConfig {
            l2c_replays: true,
            ..Default::default()
        }
    }

    /// Ideal L2C and LLC for both classes (the full "TR" headroom).
    pub fn both_levels_both_classes() -> Self {
        IdealConfig {
            l2c_translations: true,
            l2c_replays: true,
            llc_translations: true,
            llc_replays: true,
        }
    }

    /// Should an access of `class` at `level` be answered by the oracle?
    #[inline]
    pub fn applies(&self, level: MemLevel, class: AccessClass) -> bool {
        let (t, r) = match level {
            MemLevel::L2c => (self.l2c_translations, self.l2c_replays),
            MemLevel::Llc => (self.llc_translations, self.llc_replays),
            _ => (false, false),
        };
        (t && class.is_leaf_translation()) || (r && class.is_replay())
    }

    /// True if any oracle is active.
    pub fn any(&self) -> bool {
        self.l2c_translations || self.l2c_replays || self.llc_translations || self.llc_replays
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atc_types::PtLevel;

    #[test]
    fn applies_matches_level_and_class() {
        let c = IdealConfig::llc_translations();
        assert!(c.applies(MemLevel::Llc, AccessClass::Translation(PtLevel::L1)));
        assert!(!c.applies(MemLevel::Llc, AccessClass::Translation(PtLevel::L2)));
        assert!(!c.applies(MemLevel::Llc, AccessClass::ReplayData));
        assert!(!c.applies(MemLevel::L2c, AccessClass::Translation(PtLevel::L1)));
        assert!(!c.applies(MemLevel::L1d, AccessClass::Translation(PtLevel::L1)));
    }

    #[test]
    fn none_applies_nowhere() {
        let c = IdealConfig::none();
        assert!(!c.any());
        for lvl in MemLevel::ALL {
            assert!(!c.applies(lvl, AccessClass::ReplayData));
        }
    }

    #[test]
    fn full_oracle_covers_both() {
        let c = IdealConfig::both_levels_both_classes();
        assert!(c.any());
        assert!(c.applies(MemLevel::L2c, AccessClass::ReplayData));
        assert!(c.applies(MemLevel::Llc, AccessClass::Translation(PtLevel::L1)));
        assert!(!c.applies(MemLevel::L2c, AccessClass::NonReplayData));
    }
}
