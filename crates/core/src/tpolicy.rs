//! Translation-conscious replacement policies: T-DRRIP, T-SHiP and
//! T-Hawkeye (§IV of the paper).
//!
//! Each wraps its baseline policy and adjusts only the *insertion*
//! sub-policy — promotion and eviction are inherited unchanged, exactly
//! as the paper specifies:
//!
//! * **T-DRRIP** (L2C): leaf-level translation fills insert at RRPV=0
//!   (keep), replay-load fills at RRPV=3 (evict first — replay blocks are
//!   dead, and if inserted at RRPV=2 they trigger set-wide aging that
//!   evicts the pinned translations; Fig 10 demonstrates the
//!   degradation).
//! * **T-SHiP / T-Hawkeye** (LLC): per-class signatures
//!   ([`SignatureMode::PerClass`]) plus leaf-level translation fills at
//!   RRPV=0. Replay loads are left to the new signatures, which already
//!   classify them dead. ATP/TEMPO prefetch fills of replay data insert
//!   with maximum eviction priority.

use atc_cache::policy::{Drrip, Hawkeye, ReplacementPolicy, Ship, HK_RRPV_MAX, RRPV_MAX};
use atc_types::{AccessInfo, SignatureMode};

/// T-DRRIP: translation-conscious DRRIP for the private L2C.
#[derive(Debug)]
pub struct TDrrip {
    inner: Drrip,
    replay_rrpv: u8,
    translation_rrpv: u8,
}

impl TDrrip {
    /// The paper's T-DRRIP: leaf translations at RRPV=0, replays at
    /// RRPV=3.
    pub fn new(sets: usize, ways: usize) -> Self {
        TDrrip {
            inner: Drrip::new(sets, ways),
            replay_rrpv: RRPV_MAX,
            translation_rrpv: 0,
        }
    }

    /// The mis-configured variant of Fig 10 that inserts replay loads at
    /// RRPV=0 as well, demonstrating why replays must be inserted dead.
    pub fn with_replay_rrpv(sets: usize, ways: usize, replay_rrpv: u8) -> Self {
        assert!(replay_rrpv <= RRPV_MAX);
        TDrrip {
            inner: Drrip::new(sets, ways),
            replay_rrpv,
            translation_rrpv: 0,
        }
    }

    /// Read a block's RRPV (tests / diagnostics).
    pub fn rrpv(&self, set: usize, way: usize) -> u8 {
        self.inner.rrpv(set, way)
    }
}

impl ReplacementPolicy for TDrrip {
    fn name(&self) -> &'static str {
        "T-DRRIP"
    }

    fn on_fill(&mut self, set: usize, way: usize, info: &AccessInfo) {
        self.inner.on_fill(set, way, info);
        if info.class.is_leaf_translation() {
            self.inner.set_rrpv(set, way, self.translation_rrpv);
        } else if info.class.is_replay() {
            // Demand replays are dead; ATP prefetches of replay data also
            // insert with the highest priority for eviction.
            self.inner.set_rrpv(set, way, self.replay_rrpv);
        }
    }

    fn on_hit(&mut self, set: usize, way: usize, info: &AccessInfo) {
        self.inner.on_hit(set, way, info);
    }

    fn victim(&mut self, set: usize, info: &AccessInfo) -> usize {
        self.inner.victim(set, info)
    }

    fn on_evict(&mut self, set: usize, way: usize) {
        self.inner.on_evict(set, way);
    }
}

/// T-SHiP: translation-conscious SHiP for the LLC.
#[derive(Debug)]
pub struct TShip {
    inner: Ship,
    replay_prefetch_rrpv: u8,
    translation_rrpv: u8,
    force_replay_rrpv: Option<u8>,
}

impl TShip {
    /// The paper's T-SHiP: per-class signatures, leaf translations at
    /// RRPV=0, ATP/TEMPO replay prefetches at RRPV=3.
    pub fn new(sets: usize, ways: usize) -> Self {
        Self::with_signature_mode(sets, ways, SignatureMode::PerClass)
    }

    /// T-SHiP with an explicit signature mode — `IpOnly` gives the
    /// "pin-only" ablation (translation RRPV=0 without the per-class
    /// signatures).
    pub fn with_signature_mode(sets: usize, ways: usize, mode: SignatureMode) -> Self {
        TShip {
            inner: Ship::with_mode(sets, ways, mode),
            replay_prefetch_rrpv: RRPV_MAX,
            translation_rrpv: 0,
            force_replay_rrpv: None,
        }
    }

    /// The Fig 10 mis-configuration: demand replay loads forced to
    /// `rrpv` (0 in the figure) instead of the signature prediction.
    pub fn with_forced_replay_rrpv(sets: usize, ways: usize, rrpv: u8) -> Self {
        assert!(rrpv <= RRPV_MAX);
        let mut t = TShip::new(sets, ways);
        t.force_replay_rrpv = Some(rrpv);
        t
    }

    /// Read a block's RRPV (tests / diagnostics).
    pub fn rrpv(&self, set: usize, way: usize) -> u8 {
        self.inner.rrpv(set, way)
    }
}

impl ReplacementPolicy for TShip {
    fn name(&self) -> &'static str {
        "T-SHiP"
    }

    fn on_fill(&mut self, set: usize, way: usize, info: &AccessInfo) {
        self.inner.on_fill(set, way, info);
        if info.class.is_leaf_translation() {
            self.inner.set_rrpv(set, way, self.translation_rrpv);
        } else if info.class.is_replay() {
            if info.is_prefetch {
                self.inner.set_rrpv(set, way, self.replay_prefetch_rrpv);
            } else if let Some(v) = self.force_replay_rrpv {
                self.inner.set_rrpv(set, way, v);
            }
            // Demand replays otherwise follow the (per-class) signature
            // prediction, which learns they are dead.
        }
    }

    fn on_hit(&mut self, set: usize, way: usize, info: &AccessInfo) {
        self.inner.on_hit(set, way, info);
    }

    fn victim(&mut self, set: usize, info: &AccessInfo) -> usize {
        self.inner.victim(set, info)
    }

    fn on_evict(&mut self, set: usize, way: usize) {
        self.inner.on_evict(set, way);
    }
}

/// T-Hawkeye: translation-conscious Hawkeye for the LLC.
#[derive(Debug)]
pub struct THawkeye {
    inner: Hawkeye,
}

impl THawkeye {
    /// Per-class signatures plus leaf translations pinned at RRPV=0.
    pub fn new(sets: usize, ways: usize) -> Self {
        THawkeye {
            inner: Hawkeye::with_mode(sets, ways, SignatureMode::PerClass),
        }
    }

    /// Read a block's RRPV (tests / diagnostics).
    pub fn rrpv(&self, set: usize, way: usize) -> u8 {
        self.inner.rrpv(set, way)
    }
}

impl ReplacementPolicy for THawkeye {
    fn name(&self) -> &'static str {
        "T-Hawkeye"
    }

    fn on_fill(&mut self, set: usize, way: usize, info: &AccessInfo) {
        self.inner.on_fill(set, way, info);
        if info.class.is_leaf_translation() {
            self.inner.set_rrpv(set, way, 0);
        } else if info.class.is_replay() && info.is_prefetch {
            self.inner.set_rrpv(set, way, HK_RRPV_MAX);
        }
    }

    fn on_hit(&mut self, set: usize, way: usize, info: &AccessInfo) {
        self.inner.on_hit(set, way, info);
    }

    fn victim(&mut self, set: usize, info: &AccessInfo) -> usize {
        self.inner.victim(set, info)
    }

    fn on_evict(&mut self, set: usize, way: usize) {
        self.inner.on_evict(set, way);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atc_types::{AccessClass, AccessInfo, LineAddr, PtLevel};

    fn leaf_translation(ip: u64) -> AccessInfo {
        AccessInfo::demand(ip, LineAddr::new(7), AccessClass::Translation(PtLevel::L1))
    }

    fn mid_translation(ip: u64) -> AccessInfo {
        AccessInfo::demand(ip, LineAddr::new(7), AccessClass::Translation(PtLevel::L3))
    }

    fn replay(ip: u64) -> AccessInfo {
        AccessInfo::demand(ip, LineAddr::new(9), AccessClass::ReplayData)
    }

    fn non_replay(ip: u64) -> AccessInfo {
        AccessInfo::demand(ip, LineAddr::new(11), AccessClass::NonReplayData)
    }

    #[test]
    fn tdrrip_pins_leaf_translations() {
        let mut p = TDrrip::new(16, 8);
        p.on_fill(0, 0, &leaf_translation(1));
        assert_eq!(p.rrpv(0, 0), 0);
    }

    #[test]
    fn tdrrip_leaves_intermediate_levels_to_drrip() {
        let mut p = TDrrip::new(16, 8);
        p.on_fill(0, 1, &mid_translation(1));
        assert_ne!(p.rrpv(0, 1), 0, "only leaf translations are pinned");
    }

    #[test]
    fn tdrrip_inserts_replays_dead() {
        let mut p = TDrrip::new(16, 8);
        p.on_fill(0, 2, &replay(1));
        assert_eq!(p.rrpv(0, 2), RRPV_MAX);
    }

    #[test]
    fn tdrrip_fig10_variant_inserts_replays_at_zero() {
        let mut p = TDrrip::with_replay_rrpv(16, 8, 0);
        p.on_fill(0, 2, &replay(1));
        assert_eq!(p.rrpv(0, 2), 0);
    }

    #[test]
    fn tdrrip_replay_eviction_preserves_pinned_translations() {
        // Fill a set with translations (RRPV 0) and one replay (RRPV 3);
        // the victim must be the replay, not a translation.
        let mut p = TDrrip::new(16, 4);
        for w in 0..3 {
            p.on_fill(1, w, &leaf_translation(w as u64));
        }
        p.on_fill(1, 3, &replay(9));
        assert_eq!(p.victim(1, &non_replay(5)), 3);
    }

    #[test]
    fn tship_uses_per_class_signatures() {
        let mut p = TShip::new(16, 8);
        assert_eq!(p.name(), "T-SHiP");
        // Kill the data signature of IP 5 with dead blocks...
        for _ in 0..8 {
            p.on_fill(0, 0, &non_replay(5));
            p.on_evict(0, 0);
        }
        // ...then a translation fill from the same IP is pinned anyway.
        p.on_fill(0, 1, &leaf_translation(5));
        assert_eq!(p.rrpv(0, 1), 0);
    }

    #[test]
    fn tship_atp_prefetch_inserts_dead() {
        let mut p = TShip::new(16, 8);
        let pf = AccessInfo::prefetch(5, LineAddr::new(13), AccessClass::ReplayData);
        p.on_fill(0, 3, &pf);
        assert_eq!(p.rrpv(0, 3), RRPV_MAX);
    }

    #[test]
    fn tship_demand_replay_follows_signature() {
        let mut p = TShip::new(16, 8);
        // A fresh replay signature starts at the SHCT init (non-zero):
        // SHiP inserts long (RRPV=2), not forced.
        p.on_fill(0, 4, &replay(21));
        assert_eq!(p.rrpv(0, 4), 2);
        // After repeated dead evictions the signature predicts dead.
        for _ in 0..8 {
            p.on_fill(0, 4, &replay(21));
            p.on_evict(0, 4);
        }
        p.on_fill(0, 4, &replay(21));
        assert_eq!(p.rrpv(0, 4), RRPV_MAX);
    }

    #[test]
    fn tship_fig10_variant_forces_replays_to_zero() {
        let mut p = TShip::with_forced_replay_rrpv(16, 8, 0);
        p.on_fill(0, 4, &replay(21));
        assert_eq!(p.rrpv(0, 4), 0);
    }

    #[test]
    fn thawkeye_pins_leaf_translations() {
        let mut p = THawkeye::new(32, 8);
        // Detrain the IP's data signature so a vanilla fill would be
        // averse...
        for _ in 0..6 {
            p.on_fill(1, 0, &non_replay(3));
            p.on_evict(1, 0);
        }
        // ...but the translation is pinned at 0 regardless.
        p.on_fill(1, 1, &leaf_translation(3));
        assert_eq!(p.rrpv(1, 1), 0);
    }

    #[test]
    fn thawkeye_atp_prefetch_inserts_averse() {
        let mut p = THawkeye::new(32, 8);
        let pf = AccessInfo::prefetch(5, LineAddr::new(13), AccessClass::ReplayData);
        p.on_fill(0, 3, &pf);
        assert_eq!(p.rrpv(0, 3), HK_RRPV_MAX);
    }
}
