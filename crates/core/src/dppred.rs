//! DpPred + CbPred — the dead-page / dead-block predictor proposal the
//! paper compares against in §V-B (Mazumdar, Mitra & Basu, "Dead Page
//! and Dead Block Predictors: Cleaning TLBs and Caches Together",
//! HPCA 2021), simplified.
//!
//! * **DpPred** watches STLB evictions: entries evicted without reuse
//!   are *dead pages*. A table of saturating counters indexed by the
//!   installing load's IP learns which IPs produce dead pages, and later
//!   walks by those IPs *bypass* the STLB (install only in the DTLB),
//!   freeing STLB capacity for live pages.
//! * **CbPred** extends the prediction to the LLC: data fills whose IP
//!   is classified dead-page are inserted with maximum eviction priority
//!   (effective bypass), cleaning the LLC of dead blocks.
//!
//! The paper's argument — reproduced by the `compare_dppred` experiment —
//! is that this helps LLC capacity but cannot *expedite* the costly
//! translation misses themselves (dead TLB entries have long recall
//! distances, Fig 18), so the T-policies + ATP still win.

use std::sync::{Arc, Mutex, MutexGuard};

use atc_cache::policy::{fold_hash16, ReplacementPolicy, SatCounter, Ship, RRPV_MAX};
use atc_types::AccessInfo;
use atc_vm::tlb::EvictedTlbEntry;

/// Lock the shared table, tolerating poison: the table holds plain
/// counters, so state left by a panicking holder is still consistent.
fn lock_table(table: &Mutex<DeadPageTable>) -> MutexGuard<'_, DeadPageTable> {
    table.lock().unwrap_or_else(|e| e.into_inner())
}

/// Predictor table size (matches the proposal's ~11 KB budget at 2 bits
/// per entry).
const TABLE_ENTRIES: usize = 4096;
/// 2-bit counters; high half ⇒ the IP's pages die unused.
const COUNTER_MAX: u32 = 3;

/// Shared dead-page classification, trained at the STLB and consulted at
/// both the STLB fill path and the LLC insertion path.
#[derive(Debug)]
pub struct DeadPageTable {
    counters: Vec<SatCounter>,
    trainings: u64,
    bypasses: u64,
}

impl DeadPageTable {
    /// Create an untrained table (everything predicted live).
    pub fn new() -> Self {
        DeadPageTable {
            counters: vec![SatCounter::new(0, COUNTER_MAX); TABLE_ENTRIES],
            trainings: 0,
            bypasses: 0,
        }
    }

    #[inline]
    fn index(ip: u64) -> usize {
        fold_hash16(ip) as usize % TABLE_ENTRIES
    }

    /// Train on an evicted STLB entry: dead (unreused) entries push the
    /// installing IP towards "dead", reused ones pull it back.
    pub fn train(&mut self, fill_ip: u64, reused: bool) {
        self.trainings += 1;
        let c = &mut self.counters[Self::index(fill_ip)];
        if reused {
            c.dec();
        } else {
            c.inc();
        }
    }

    /// Is a page installed by `ip` predicted dead?
    pub fn predict_dead(&self, ip: u64) -> bool {
        self.counters[Self::index(ip)].is_high()
    }

    /// Record a bypass decision (statistics).
    pub fn note_bypass(&mut self) {
        self.bypasses += 1;
    }

    /// `(trainings, bypasses)` so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.trainings, self.bypasses)
    }
}

impl Default for DeadPageTable {
    fn default() -> Self {
        Self::new()
    }
}

/// The DpPred mechanism: a shared, thread-safe dead-page table.
#[derive(Debug, Clone)]
pub struct DpPred {
    table: Arc<Mutex<DeadPageTable>>,
}

impl DpPred {
    /// Create a fresh predictor.
    pub fn new() -> Self {
        DpPred {
            table: Arc::new(Mutex::new(DeadPageTable::new())),
        }
    }

    /// Should the STLB fill for a walk triggered by `ip` be bypassed?
    pub fn should_bypass_stlb(&self, ip: u64) -> bool {
        let mut t = lock_table(&self.table);
        if t.predict_dead(ip) {
            t.note_bypass();
            true
        } else {
            false
        }
    }

    /// Train on an STLB eviction outcome.
    pub fn on_stlb_eviction(&self, evicted: &EvictedTlbEntry) {
        lock_table(&self.table).train(evicted.fill_ip, evicted.reused);
    }

    /// Build the companion CbPred LLC policy sharing this table.
    pub fn cbpred_policy(&self, sets: usize, ways: usize) -> CbPredPolicy {
        CbPredPolicy {
            inner: Ship::new(sets, ways),
            table: Arc::clone(&self.table),
        }
    }

    /// `(trainings, bypasses)` so far.
    pub fn stats(&self) -> (u64, u64) {
        lock_table(&self.table).stats()
    }
}

impl Default for DpPred {
    fn default() -> Self {
        Self::new()
    }
}

/// CbPred at the LLC: conventional SHiP (as in the original proposal),
/// with demand data fills from dead-page IPs inserted for immediate
/// eviction.
#[derive(Debug)]
pub struct CbPredPolicy {
    inner: Ship,
    table: Arc<Mutex<DeadPageTable>>,
}

impl CbPredPolicy {
    /// Read a block's RRPV (tests).
    pub fn rrpv(&self, set: usize, way: usize) -> u8 {
        self.inner.rrpv(set, way)
    }
}

impl ReplacementPolicy for CbPredPolicy {
    fn name(&self) -> &'static str {
        "CbPred"
    }

    fn on_fill(&mut self, set: usize, way: usize, info: &AccessInfo) {
        self.inner.on_fill(set, way, info);
        if info.class.is_demand_load() && lock_table(&self.table).predict_dead(info.ip) {
            self.inner.set_rrpv(set, way, RRPV_MAX);
        }
    }

    fn on_hit(&mut self, set: usize, way: usize, info: &AccessInfo) {
        self.inner.on_hit(set, way, info);
    }

    fn victim(&mut self, set: usize, info: &AccessInfo) -> usize {
        self.inner.victim(set, info)
    }

    fn on_evict(&mut self, set: usize, way: usize) {
        self.inner.on_evict(set, way);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atc_types::{AccessClass, LineAddr, Vpn};

    fn dead_eviction(ip: u64) -> EvictedTlbEntry {
        EvictedTlbEntry {
            vpn: Vpn::new(1),
            fill_ip: ip,
            reused: false,
        }
    }

    fn live_eviction(ip: u64) -> EvictedTlbEntry {
        EvictedTlbEntry {
            vpn: Vpn::new(1),
            fill_ip: ip,
            reused: true,
        }
    }

    #[test]
    fn untrained_table_predicts_live() {
        let p = DpPred::new();
        assert!(!p.should_bypass_stlb(0x400));
    }

    #[test]
    fn dead_evictions_train_towards_bypass() {
        let p = DpPred::new();
        for _ in 0..3 {
            p.on_stlb_eviction(&dead_eviction(0x400));
        }
        assert!(p.should_bypass_stlb(0x400));
        // Other IPs unaffected.
        assert!(!p.should_bypass_stlb(0x500));
        let (trainings, bypasses) = p.stats();
        assert_eq!(trainings, 3);
        assert_eq!(bypasses, 1);
    }

    #[test]
    fn reuse_pulls_prediction_back() {
        let p = DpPred::new();
        for _ in 0..3 {
            p.on_stlb_eviction(&dead_eviction(7));
        }
        assert!(p.should_bypass_stlb(7));
        for _ in 0..3 {
            p.on_stlb_eviction(&live_eviction(7));
        }
        assert!(!p.should_bypass_stlb(7));
    }

    #[test]
    fn cbpred_policy_bypasses_dead_ip_fills() {
        let p = DpPred::new();
        for _ in 0..3 {
            p.on_stlb_eviction(&dead_eviction(0x42));
        }
        let mut pol = p.cbpred_policy(4, 4);
        let dead = AccessInfo::demand(0x42, LineAddr::new(1), AccessClass::NonReplayData);
        pol.on_fill(0, 0, &dead);
        assert_eq!(pol.rrpv(0, 0), RRPV_MAX);
        let live = AccessInfo::demand(0x43, LineAddr::new(2), AccessClass::NonReplayData);
        pol.on_fill(0, 1, &live);
        assert!(pol.rrpv(0, 1) < RRPV_MAX);
        assert_eq!(pol.name(), "CbPred");
    }

    #[test]
    fn cbpred_leaves_translations_alone() {
        use atc_types::PtLevel;
        let p = DpPred::new();
        for _ in 0..3 {
            p.on_stlb_eviction(&dead_eviction(0x42));
        }
        let mut pol = p.cbpred_policy(4, 4);
        let t = AccessInfo::demand(
            0x42,
            LineAddr::new(3),
            AccessClass::Translation(PtLevel::L1),
        );
        pol.on_fill(0, 2, &t);
        // Translation fills follow plain SHiP (the proposal is unaware of
        // them — the paper's criticism).
        assert!(pol.rrpv(0, 2) < RRPV_MAX);
    }
}
