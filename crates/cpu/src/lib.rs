#![warn(missing_docs)]
#![deny(unsafe_code)]

//! Out-of-order core model.
//!
//! [`RobModel`] models the parts of a deep OoO core that the paper's
//! study depends on: a large ROB (352 entries) whose *head* is the
//! bottleneck, bounded issue (6/cycle) and retire (4/cycle) bandwidth,
//! and precise attribution of head-of-ROB stall cycles to their cause —
//! outstanding page walks, replay-load data, or non-replay-load data
//! (Figs 1 and 16).
//!
//! The model is trace-driven and lazy: instructions are dispatched in
//! program order; completion times are supplied by the memory system; and
//! retirement is replayed in order whenever the ROB fills or at the end
//! of the run. Loads record both when their *translation* finished and
//! when their *data* arrived, which is exactly the split the paper uses
//! ("a demand load that misses at the STLB stalls the head of the ROB
//! ... 54 cycles for the walk and 226 for the replay").
//!
//! # Example
//!
//! ```
//! use atc_cpu::{CompletionKind, RobModel};
//! use atc_types::config::CoreConfig;
//!
//! let mut rob = RobModel::new(&CoreConfig::default());
//! let at = rob.dispatch();
//! rob.push(CompletionKind::Load {
//!     trans_done: at + 40,   // page walk finished here
//!     data_done: at + 240,   // replay data arrived here
//!     walked: true,
//! });
//! for _ in 0..10 { let _ = rob.dispatch(); rob.push(CompletionKind::NonMemory); }
//! let stats = rob.finish();
//! assert!(stats.stalls.stlb_walk > 0);
//! assert!(stats.stalls.replay_data > 0);
//! ```

use std::collections::VecDeque;

use atc_stats::{Histogram, StallBreakdown};
use atc_types::config::CoreConfig;

/// How an instruction completes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompletionKind {
    /// Non-memory instruction (1-cycle execute).
    NonMemory,
    /// A demand load: `trans_done` is when its translation resolved,
    /// `data_done` when its value arrived, `walked` whether the
    /// translation missed the STLB (making the data access a *replay*).
    Load {
        /// Cycle the translation resolved (TLB hit or walk completion).
        trans_done: u64,
        /// Cycle the data arrived (≥ `trans_done`).
        data_done: u64,
        /// True if the translation missed the STLB and walked.
        walked: bool,
    },
    /// A store: retires without waiting for the write.
    Store,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    dispatched: u64,
    kind: CompletionKind,
}

/// End-of-run core statistics.
#[derive(Debug, Clone)]
pub struct CoreStats {
    /// Retired instruction count.
    pub instructions: u64,
    /// Total cycles from first dispatch to last retirement.
    pub cycles: u64,
    /// Head-of-ROB stall attribution.
    pub stalls: StallBreakdown,
    /// Per-stalling-load head-stall cycles due to the page walk.
    pub walk_stall_hist: Histogram,
    /// Per-stalling-load head-stall cycles due to replay data.
    pub replay_stall_hist: Histogram,
    /// Per-stalling-load head-stall cycles due to non-replay data.
    pub non_replay_stall_hist: Histogram,
}

impl CoreStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }
}

/// The trace-driven ROB model.
#[derive(Debug)]
pub struct RobModel {
    cfg: CoreConfig,
    clock: u64,
    dispatched_this_cycle: usize,
    rob: VecDeque<Entry>,
    pending_dispatch: bool,
    retire_clock: u64,
    retire_slots_left: usize,
    instructions: u64,
    stalls: StallBreakdown,
    walk_hist: Histogram,
    replay_hist: Histogram,
    non_replay_hist: Histogram,
    measure_start: u64,
    last_load_done: u64,
}

/// Stall histograms: 10-cycle buckets up to 600 cycles.
fn stall_hist() -> Histogram {
    Histogram::new(10, 60)
}

impl RobModel {
    /// Create a core model.
    pub fn new(cfg: &CoreConfig) -> Self {
        assert!(cfg.rob_entries > 0 && cfg.issue_width > 0 && cfg.retire_width > 0);
        RobModel {
            cfg: *cfg,
            clock: 0,
            dispatched_this_cycle: 0,
            rob: VecDeque::with_capacity(cfg.rob_entries),
            pending_dispatch: false,
            retire_clock: 0,
            retire_slots_left: cfg.retire_width,
            instructions: 0,
            stalls: StallBreakdown::default(),
            walk_hist: stall_hist(),
            replay_hist: stall_hist(),
            non_replay_hist: stall_hist(),
            measure_start: 0,
            last_load_done: 0,
        }
    }

    /// Completion cycle of the most recently pushed load — the issue
    /// lower bound for address-dependent memory operations.
    #[inline]
    pub fn last_load_completion(&self) -> u64 {
        self.last_load_done
    }

    /// Record a load's completion cycle (drives dependent issue).
    #[inline]
    pub fn note_load_completion(&mut self, cycle: u64) {
        self.last_load_done = cycle;
    }

    /// End the warmup phase: zero instruction, stall and histogram
    /// counters while keeping the clock and in-flight ROB contents, so
    /// measurement continues seamlessly from the warmed-up state.
    pub fn reset_measurement(&mut self) {
        self.instructions = 0;
        self.stalls = StallBreakdown::default();
        self.walk_hist = stall_hist();
        self.replay_hist = stall_hist();
        self.non_replay_hist = stall_hist();
        self.measure_start = self.clock;
    }

    /// Current dispatch cycle (the memory system issues requests at this
    /// time).
    #[inline]
    pub fn now(&self) -> u64 {
        self.clock
    }

    /// Reserve a dispatch slot for the next instruction and return its
    /// dispatch cycle. Must be followed by exactly one
    /// [`push`](Self::push).
    ///
    /// # Panics
    ///
    /// Panics if called twice without an intervening `push`.
    #[inline]
    pub fn dispatch(&mut self) -> u64 {
        assert!(
            !self.pending_dispatch,
            "dispatch() called twice without push()"
        );
        // Issue-width limit.
        if self.dispatched_this_cycle == self.cfg.issue_width {
            self.clock += 1;
            self.dispatched_this_cycle = 0;
        }
        // ROB-full limit: retire the head to make room, and dispatch no
        // earlier than that retirement.
        while self.rob.len() == self.cfg.rob_entries {
            let retired_at = self.retire_one();
            if retired_at > self.clock {
                self.clock = retired_at;
                self.dispatched_this_cycle = 0;
            }
        }
        self.pending_dispatch = true;
        self.dispatched_this_cycle += 1;
        self.clock
    }

    /// Append the instruction reserved by the last
    /// [`dispatch`](Self::dispatch) with its completion behaviour.
    ///
    /// # Panics
    ///
    /// Panics if no dispatch is pending, or if a load's `data_done`
    /// precedes its `trans_done`.
    #[inline]
    pub fn push(&mut self, kind: CompletionKind) {
        assert!(self.pending_dispatch, "push() without dispatch()");
        if let CompletionKind::Load {
            trans_done,
            data_done,
            ..
        } = kind
        {
            assert!(
                data_done >= trans_done,
                "data cannot arrive before translation"
            );
        }
        self.pending_dispatch = false;
        self.instructions += 1;
        self.rob.push_back(Entry {
            dispatched: self.clock,
            kind,
        });
    }

    /// Retire the ROB head, attributing any head stall. Returns the
    /// retirement cycle.
    fn retire_one(&mut self) -> u64 {
        let e = self.rob.pop_front().expect("retire from empty ROB");
        let complete = match e.kind {
            CompletionKind::NonMemory | CompletionKind::Store => e.dispatched + 1,
            CompletionKind::Load { data_done, .. } => data_done,
        };
        // The head cannot retire before it completes; the gap is the
        // head-of-ROB stall, attributed by cause.
        if self.retire_clock <= e.dispatched {
            // Retirement has caught up with dispatch: no backlog. The
            // earliest this instruction could retire is one cycle after
            // dispatch.
            self.retire_clock = e.dispatched + 1;
            self.retire_slots_left = self.cfg.retire_width;
        }
        if complete > self.retire_clock {
            let stall_start = self.retire_clock;
            match e.kind {
                CompletionKind::Load {
                    trans_done,
                    data_done,
                    walked,
                } => {
                    if walked {
                        let walk_part = trans_done
                            .saturating_sub(stall_start)
                            .min(data_done - stall_start);
                        let data_part = (data_done - stall_start) - walk_part;
                        if walk_part > 0 {
                            self.stalls.stlb_walk += walk_part;
                            self.walk_hist.record(walk_part);
                        }
                        if data_part > 0 {
                            self.stalls.replay_data += data_part;
                            self.replay_hist.record(data_part);
                        }
                    } else {
                        let part = data_done - stall_start;
                        self.stalls.non_replay_data += part;
                        self.non_replay_hist.record(part);
                    }
                }
                CompletionKind::NonMemory | CompletionKind::Store => {
                    self.stalls.other += complete - stall_start;
                }
            }
            self.retire_clock = complete;
            self.retire_slots_left = self.cfg.retire_width;
        }
        let retired_at = self.retire_clock;
        self.retire_slots_left -= 1;
        if self.retire_slots_left == 0 {
            self.retire_clock += 1;
            self.retire_slots_left = self.cfg.retire_width;
        }
        retired_at
    }

    /// Drain the ROB and return the run's statistics.
    ///
    /// # Panics
    ///
    /// Panics if a dispatch is pending without its `push`.
    pub fn finish(mut self) -> CoreStats {
        assert!(!self.pending_dispatch, "finish() with a pending dispatch");
        let mut last = self.retire_clock;
        while !self.rob.is_empty() {
            last = self.retire_one();
        }
        CoreStats {
            instructions: self.instructions,
            cycles: last.max(self.clock).saturating_sub(self.measure_start),
            stalls: self.stalls,
            walk_stall_hist: self.walk_hist,
            replay_stall_hist: self.replay_hist,
            non_replay_stall_hist: self.non_replay_hist,
        }
    }

    /// Instructions dispatched into the ROB since the last measurement
    /// reset.
    pub fn dispatched(&self) -> u64 {
        self.instructions
    }

    /// Current ROB occupancy in entries (diagnostics).
    pub fn occupancy(&self) -> usize {
        self.rob.len()
    }

    /// Human-readable description of the ROB-head instruction, including
    /// completion cycles for loads — used by the deadlock watchdog's
    /// diagnostic snapshot.
    pub fn head_desc(&self) -> String {
        match self.rob.front() {
            None => "empty ROB".to_string(),
            Some(e) => match e.kind {
                CompletionKind::NonMemory => {
                    format!("non-memory dispatched at cycle {}", e.dispatched)
                }
                CompletionKind::Store => format!("store dispatched at cycle {}", e.dispatched),
                CompletionKind::Load {
                    trans_done,
                    data_done,
                    walked,
                } => format!(
                    "load dispatched at cycle {} (translation done {}, data done {}, walked: {})",
                    e.dispatched, trans_done, data_done, walked
                ),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core() -> RobModel {
        RobModel::new(&CoreConfig {
            rob_entries: 8,
            issue_width: 2,
            retire_width: 2,
        })
    }

    #[test]
    fn issue_width_paces_dispatch() {
        let mut r = core();
        let c0 = r.dispatch();
        r.push(CompletionKind::NonMemory);
        let c1 = r.dispatch();
        r.push(CompletionKind::NonMemory);
        let c2 = r.dispatch();
        r.push(CompletionKind::NonMemory);
        assert_eq!(c0, c1);
        assert_eq!(c2, c0 + 1, "third instruction spills to the next cycle");
    }

    #[test]
    fn ideal_stream_ipc_close_to_retire_width() {
        let mut r = RobModel::new(&CoreConfig {
            rob_entries: 32,
            issue_width: 4,
            retire_width: 4,
        });
        for _ in 0..4000 {
            let _ = r.dispatch();
            r.push(CompletionKind::NonMemory);
        }
        let s = r.finish();
        assert_eq!(s.instructions, 4000);
        let ipc = s.ipc();
        assert!(ipc > 3.5 && ipc <= 4.01, "ipc={ipc}");
    }

    #[test]
    fn slow_load_attributes_stall_by_phase() {
        let mut r = core();
        let at = r.dispatch();
        r.push(CompletionKind::Load {
            trans_done: at + 50,
            data_done: at + 250,
            walked: true,
        });
        let s = r.finish();
        // Head could retire at dispatch+1; walk part ≈ 49, replay ≈ 200.
        assert_eq!(s.stalls.stlb_walk, 49);
        assert_eq!(s.stalls.replay_data, 200);
        assert_eq!(s.stalls.non_replay_data, 0);
        assert_eq!(s.walk_stall_hist.count(), 1);
        assert_eq!(s.replay_stall_hist.count(), 1);
    }

    #[test]
    fn non_replay_load_attributes_to_non_replay() {
        let mut r = core();
        let at = r.dispatch();
        r.push(CompletionKind::Load {
            trans_done: at + 1,
            data_done: at + 40,
            walked: false,
        });
        let s = r.finish();
        assert_eq!(s.stalls.non_replay_data, 39);
        assert_eq!(s.stalls.stlb_walk, 0);
    }

    #[test]
    fn covered_load_causes_no_stall() {
        // A slow load behind a slower one does not stall the head again.
        let mut r = core();
        let a = r.dispatch();
        r.push(CompletionKind::Load {
            trans_done: a + 1,
            data_done: a + 100,
            walked: false,
        });
        let b = r.dispatch();
        r.push(CompletionKind::Load {
            trans_done: b + 1,
            data_done: b + 90,
            walked: false,
        });
        let s = r.finish();
        // Second load completed before the head retired: one stall only.
        assert_eq!(s.non_replay_stall_hist.count(), 1);
        assert_eq!(s.stalls.non_replay_data, 99);
    }

    #[test]
    fn rob_full_blocks_dispatch_until_head_retires() {
        let mut r = core(); // 8 entries
        let a = r.dispatch();
        r.push(CompletionKind::Load {
            trans_done: a + 1,
            data_done: a + 1000,
            walked: false,
        });
        for _ in 0..7 {
            let _ = r.dispatch();
            r.push(CompletionKind::NonMemory);
        }
        // ROB now full behind the slow load; next dispatch must jump to
        // ≥ its completion.
        let c = r.dispatch();
        r.push(CompletionKind::NonMemory);
        assert!(
            c >= a + 1000,
            "dispatch at {c}, load completes at {}",
            a + 1000
        );
        let s = r.finish();
        assert_eq!(s.instructions, 9);
    }

    #[test]
    fn retire_width_bounds_throughput() {
        // 100 ready instructions retire at ≤ retire_width per cycle.
        let mut r = RobModel::new(&CoreConfig {
            rob_entries: 256,
            issue_width: 8,
            retire_width: 2,
        });
        for _ in 0..100 {
            let _ = r.dispatch();
            r.push(CompletionKind::NonMemory);
        }
        let s = r.finish();
        assert!(s.cycles >= 50, "cycles={}", s.cycles);
    }

    #[test]
    fn stores_do_not_stall_retirement() {
        let mut r = core();
        let _ = r.dispatch();
        r.push(CompletionKind::Store);
        let s = r.finish();
        assert_eq!(s.stalls.total(), 0);
    }

    #[test]
    #[should_panic(expected = "without push")]
    fn double_dispatch_panics() {
        let mut r = core();
        let _ = r.dispatch();
        let _ = r.dispatch();
    }

    #[test]
    #[should_panic(expected = "data cannot arrive before translation")]
    fn bad_load_times_panic() {
        let mut r = core();
        let _ = r.dispatch();
        r.push(CompletionKind::Load {
            trans_done: 10,
            data_done: 5,
            walked: true,
        });
    }

    #[test]
    fn walked_load_with_fast_data_counts_walk_only() {
        let mut r = core();
        let at = r.dispatch();
        r.push(CompletionKind::Load {
            trans_done: at + 60,
            data_done: at + 60,
            walked: true,
        });
        let s = r.finish();
        assert_eq!(s.stalls.stlb_walk, 59);
        assert_eq!(s.stalls.replay_data, 0);
    }
}
