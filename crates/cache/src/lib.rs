#![warn(missing_docs)]
#![deny(unsafe_code)]

//! Set-associative caches, MSHRs, and cache replacement policies.
//!
//! The cache model matches the paper's platform: 64-byte blocks that hold
//! either data or eight page-table entries, per-class hit/miss statistics
//! (non-replay / replay / leaf-translation / …), miss-status-holding
//! registers that merge concurrent misses to the same block, and
//! pluggable replacement via [`policy::ReplacementPolicy`].
//!
//! Provided policies:
//!
//! * [`policy::Lru`] — true LRU;
//! * [`policy::Srrip`] / [`policy::Brrip`] / [`policy::Drrip`] — the RRIP
//!   family with set dueling (Jaleel et al.);
//! * [`policy::Ship`] — signature-based hit prediction (Wu et al.), with
//!   selectable [`SignatureMode`](atc_types::SignatureMode) so the
//!   paper's translation-conscious signatures can be switched on;
//! * [`policy::Hawkeye`] — Belady-trained (Jain & Lin), with sampled-set
//!   OPTgen.
//!
//! The paper's T-DRRIP / T-SHiP / T-Hawkeye variants live in `atc-core`,
//! layered on top of these.
//!
//! # Example
//!
//! ```
//! use atc_cache::{Cache, policy::Lru};
//! use atc_types::{AccessClass, AccessInfo, LineAddr};
//!
//! let mut c = Cache::new("L1D", 64, 8, 5, 8, Lru::new(64, 8))?;
//! let info = AccessInfo::demand(0x400, LineAddr::new(0x1000), AccessClass::NonReplayData);
//! assert!(c.lookup(&info, 0).is_none());      // cold miss
//! c.insert_miss(&info, 100, 0);               // fill, data ready at cycle 100
//! assert!(c.lookup(&info, 200).is_some());    // hit
//! # Ok::<(), atc_types::SimError>(())
//! ```

pub mod cache;
pub mod mshr;
pub mod policy;

pub use cache::{Cache, EvictedLine, Probe};
pub use mshr::Mshr;
