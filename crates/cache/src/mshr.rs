//! Miss-status-holding registers.
//!
//! An MSHR entry tracks one outstanding miss per 64-byte block. A second
//! request to the same block while its fill is in flight *merges* —
//! returning the in-flight completion time instead of issuing a second
//! fill. When every register is busy, new misses are delayed until the
//! earliest in-flight fill completes (a simple but effective bandwidth
//! model — the paper relies on MSHR pressure to bound its "ideal cache"
//! study the same way).

use std::collections::HashMap;

use atc_types::{LineAddr, SimError};

#[derive(Debug, Clone, Copy)]
struct Entry {
    ready: u64,
    is_prefetch: bool,
}

/// An MSHR file with a fixed number of registers.
#[derive(Debug)]
pub struct Mshr {
    entries: HashMap<LineAddr, Entry>,
    capacity: usize,
    merges: u64,
    allocations: u64,
    full_stalls: u64,
    prefetch_useful_merges: u64,
}

impl Mshr {
    /// Create an MSHR file with `capacity` registers.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] if `capacity == 0`.
    pub fn new(capacity: usize) -> Result<Self, SimError> {
        if capacity == 0 {
            return Err(SimError::config("MSHR capacity must be positive"));
        }
        Ok(Mshr {
            entries: HashMap::new(),
            capacity,
            merges: 0,
            allocations: 0,
            full_stalls: 0,
            prefetch_useful_merges: 0,
        })
    }

    /// Drop entries whose fills have completed by `cycle`. Empty files
    /// return immediately — the common case on the per-access probe
    /// path, where most levels have nothing in flight.
    #[inline]
    fn expire(&mut self, cycle: u64) {
        if self.entries.is_empty() {
            return;
        }
        self.entries.retain(|_, e| e.ready > cycle);
    }

    /// If `line` has an in-flight fill at `cycle`, merge with it and
    /// return its completion cycle. A demand merge on a prefetch-initiated
    /// entry marks the entry as demand (the prefetch was late but useful).
    #[inline]
    pub fn merge(&mut self, line: LineAddr, cycle: u64, is_prefetch: bool) -> Option<u64> {
        if self.entries.is_empty() {
            return None;
        }
        self.expire(cycle);
        let e = self.entries.get_mut(&line)?;
        self.merges += 1;
        if !is_prefetch && e.is_prefetch {
            // A demand request caught an in-flight prefetch: the prefetch
            // was late but useful (it hides part of the miss latency).
            self.prefetch_useful_merges += 1;
            e.is_prefetch = false;
        }
        Some(e.ready)
    }

    /// Allocate a register for a new miss to `line` completing at
    /// `ready`. If the file is full, the miss is delayed until the
    /// earliest in-flight fill completes; the possibly-postponed
    /// completion cycle is returned.
    pub fn allocate(&mut self, line: LineAddr, cycle: u64, ready: u64, is_prefetch: bool) -> u64 {
        self.expire(cycle);
        let mut ready = ready;
        if self.entries.len() >= self.capacity {
            let earliest = self
                .entries
                .values()
                .map(|e| e.ready)
                .min()
                .expect("full MSHR is non-empty");
            let delay = earliest.saturating_sub(cycle);
            ready += delay;
            self.full_stalls += 1;
            // Make room: the earliest entry has completed by `earliest`.
            self.entries.retain(|_, e| e.ready > earliest);
        }
        self.allocations += 1;
        self.entries.insert(line, Entry { ready, is_prefetch });
        ready
    }

    /// Outstanding (unexpired) entries at `cycle`.
    pub fn in_flight(&mut self, cycle: u64) -> usize {
        self.expire(cycle);
        self.entries.len()
    }

    /// Outstanding entries at `cycle` without mutating the file.
    ///
    /// Read-only counterpart of [`in_flight`](Self::in_flight) for
    /// diagnostics (e.g. the deadlock watchdog snapshotting machine
    /// state).
    pub fn outstanding_at(&self, cycle: u64) -> usize {
        self.entries.values().filter(|e| e.ready > cycle).count()
    }

    /// Total merges recorded.
    pub fn merges(&self) -> u64 {
        self.merges
    }

    /// Total registers allocated.
    pub fn allocations(&self) -> u64 {
        self.allocations
    }

    /// Times a miss found the file full and was delayed.
    pub fn full_stalls(&self) -> u64 {
        self.full_stalls
    }

    /// Demand merges that caught an in-flight prefetch (late-but-useful
    /// prefetches).
    pub fn prefetch_useful_merges(&self) -> u64 {
        self.prefetch_useful_merges
    }

    /// Zero counters (in-flight entries are kept).
    pub fn reset_stats(&mut self) {
        self.merges = 0;
        self.allocations = 0;
        self.full_stalls = 0;
        self.prefetch_useful_merges = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(x: u64) -> LineAddr {
        LineAddr::new(x)
    }

    fn mshr(capacity: usize) -> Mshr {
        Mshr::new(capacity).expect("test MSHR capacity is valid")
    }

    #[test]
    fn merge_returns_inflight_ready() {
        let mut m = mshr(4);
        m.allocate(line(1), 0, 100, false);
        assert_eq!(m.merge(line(1), 50, false), Some(100));
        assert_eq!(m.merges(), 1);
    }

    #[test]
    fn expired_entries_do_not_merge() {
        let mut m = mshr(4);
        m.allocate(line(1), 0, 100, false);
        assert_eq!(m.merge(line(1), 100, false), None);
    }

    #[test]
    fn full_file_delays_new_misses() {
        let mut m = mshr(2);
        m.allocate(line(1), 0, 100, false);
        m.allocate(line(2), 0, 120, false);
        // Third miss at cycle 10 must wait until cycle 100 frees a slot:
        // its fill (nominally ready at 210) slips by 90.
        let ready = m.allocate(line(3), 10, 210, false);
        assert_eq!(ready, 300);
        assert_eq!(m.full_stalls(), 1);
    }

    #[test]
    fn free_file_does_not_delay() {
        let mut m = mshr(2);
        let ready = m.allocate(line(9), 5, 70, false);
        assert_eq!(ready, 70);
        assert_eq!(m.full_stalls(), 0);
    }

    #[test]
    fn demand_merge_clears_prefetch_flag() {
        let mut m = mshr(2);
        m.allocate(line(4), 0, 50, true);
        assert_eq!(m.merge(line(4), 10, false), Some(50));
        // Internal flag cleared; observable only through later behaviour,
        // but the merge itself must succeed.
        assert_eq!(m.in_flight(10), 1);
        assert_eq!(m.in_flight(50), 0);
    }

    #[test]
    fn zero_capacity_rejected() {
        let err = Mshr::new(0).unwrap_err();
        assert!(err.to_string().contains("capacity"), "{err}");
    }

    #[test]
    fn outstanding_at_matches_in_flight_without_mutation() {
        let mut m = mshr(4);
        m.allocate(line(1), 0, 100, false);
        m.allocate(line(2), 0, 200, false);
        assert_eq!(m.outstanding_at(50), 2);
        assert_eq!(m.outstanding_at(150), 1);
        assert_eq!(m.outstanding_at(250), 0);
        // The read-only probe must not expire entries.
        assert_eq!(m.in_flight(150), 1);
    }
}
