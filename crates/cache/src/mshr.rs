//! Miss-status-holding registers.
//!
//! An MSHR entry tracks one outstanding miss per 64-byte block. A second
//! request to the same block while its fill is in flight *merges* —
//! returning the in-flight completion time instead of issuing a second
//! fill. When every register is busy, new misses are delayed until the
//! earliest in-flight fill completes (a simple but effective bandwidth
//! model — the paper relies on MSHR pressure to bound its "ideal cache"
//! study the same way).

use atc_types::{LineAddr, SimError};

#[derive(Debug, Clone, Copy)]
struct Entry {
    ready: u64,
    is_prefetch: bool,
}

/// An MSHR file with a fixed number of registers.
///
/// The register file is two parallel vectors (line addresses and entry
/// state) scanned linearly: an MSHR holds at most a few dozen entries,
/// so a contiguous scan over raw `u64` line words beats a hash map on
/// the per-access probe path — no hashing, no bucket walk, and the
/// common all-expired case stays one bounds check.
#[derive(Debug)]
pub struct Mshr {
    lines: Vec<u64>,
    entries: Vec<Entry>,
    capacity: usize,
    /// Lower bound on the earliest `ready` among resident entries
    /// (`u64::MAX` when empty). A sweep at `cycle < min_ready` can
    /// expire nothing and returns immediately; lazy retirement in
    /// [`merge`](Self::merge) can leave the bound conservatively low,
    /// which only costs an occasional no-op sweep.
    min_ready: u64,
    merges: u64,
    allocations: u64,
    full_stalls: u64,
    prefetch_useful_merges: u64,
}

impl Mshr {
    /// Create an MSHR file with `capacity` registers.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] if `capacity == 0`.
    pub fn new(capacity: usize) -> Result<Self, SimError> {
        if capacity == 0 {
            return Err(SimError::config("MSHR capacity must be positive"));
        }
        Ok(Mshr {
            lines: Vec::with_capacity(capacity),
            entries: Vec::with_capacity(capacity),
            capacity,
            min_ready: u64::MAX,
            merges: 0,
            allocations: 0,
            full_stalls: 0,
            prefetch_useful_merges: 0,
        })
    }

    /// Drop entries whose fills have completed by `cycle`, maintaining
    /// the `min_ready` watermark over the survivors. Probes below the
    /// watermark skip this entirely — nothing can have expired.
    #[inline]
    fn expire(&mut self, cycle: u64) {
        if cycle < self.min_ready {
            return;
        }
        let mut min = u64::MAX;
        let mut i = 0;
        while i < self.entries.len() {
            let ready = self.entries[i].ready;
            if ready <= cycle {
                self.lines.swap_remove(i);
                self.entries.swap_remove(i);
            } else {
                min = min.min(ready);
                i += 1;
            }
        }
        self.min_ready = min;
    }

    /// If `line` has an in-flight fill at `cycle`, merge with it and
    /// return its completion cycle. A demand merge on a prefetch-initiated
    /// entry marks the entry as demand (the prefetch was late but useful).
    ///
    /// Expiry is lazy: the probe is a pure tag scan over the line words
    /// (the hottest loop in the whole miss path, and branch-free enough
    /// to vectorize), and a register is only retired when a probe to its
    /// own line finds the fill already complete. Other completed entries
    /// linger until the next [`allocate`](Self::allocate) or
    /// [`in_flight`](Self::in_flight) sweeps them — a pure-capacity
    /// concern, invisible to merge results, full-stall accounting, and
    /// every counter.
    #[inline]
    pub fn merge(&mut self, line: LineAddr, cycle: u64, is_prefetch: bool) -> Option<u64> {
        // Branchless whole-file scan: most probes find no match, and a
        // scan without early exit vectorizes where `position` cannot.
        // A line is never in flight twice, so keeping the last matching
        // index is exact.
        let raw = line.raw();
        let mut found = usize::MAX;
        for (i, &l) in self.lines.iter().enumerate() {
            if l == raw {
                found = i;
            }
        }
        if found == usize::MAX {
            return None;
        }
        let i = found;
        let e = &mut self.entries[i];
        if e.ready <= cycle {
            // The matched fill has completed: retire the stale register
            // (a block is never in flight twice, so this is the only
            // entry a fresh miss to `line` could have merged with).
            self.lines.swap_remove(i);
            self.entries.swap_remove(i);
            return None;
        }
        self.merges += 1;
        if !is_prefetch && e.is_prefetch {
            // A demand request caught an in-flight prefetch: the prefetch
            // was late but useful (it hides part of the miss latency).
            self.prefetch_useful_merges += 1;
            e.is_prefetch = false;
        }
        Some(e.ready)
    }

    /// Allocate a register for a new miss to `line` completing at
    /// `ready`. If the file is full, the miss is delayed until the
    /// earliest in-flight fill completes; the possibly-postponed
    /// completion cycle is returned.
    ///
    /// The caller must have checked [`merge`](Self::merge) first and
    /// seen `None` — every access path merges before allocating, so a
    /// line is never in flight twice (debug-asserted below).
    pub fn allocate(&mut self, line: LineAddr, cycle: u64, ready: u64, is_prefetch: bool) -> u64 {
        self.expire(cycle);
        let mut ready = ready;
        if self.entries.len() >= self.capacity {
            // Every resident entry is unexpired here (the sweep above
            // just ran), so the earliest in-flight completion comes from
            // a direct scan — the lazily-maintained watermark can sit
            // below it after a merge retired the entry it tracked.
            let earliest = self
                .entries
                .iter()
                .map(|e| e.ready)
                .min()
                .expect("full MSHR file is non-empty");
            let delay = earliest.saturating_sub(cycle);
            ready += delay;
            self.full_stalls += 1;
            // Make room: the earliest entry has completed by `earliest`.
            self.expire(earliest);
        }
        debug_assert!(
            !self.lines.contains(&line.raw()),
            "allocate on a line already in flight (probe/merge skipped?)"
        );
        self.allocations += 1;
        self.lines.push(line.raw());
        self.entries.push(Entry { ready, is_prefetch });
        self.min_ready = self.min_ready.min(ready);
        ready
    }

    /// Event-wheel split of [`allocate`](Self::allocate)'s full-file
    /// handling: if the file is full at `cycle`, count the stall and
    /// return the wakeup cycle (the earliest in-flight completion) so
    /// the caller can schedule the allocation there instead of folding
    /// the delay in inline. A follow-up `allocate` at the returned
    /// cycle, with the delay already added to its `ready`, lands in the
    /// exact state the inline path produces: the wakeup sweep frees the
    /// same entries `allocate(cycle, …)` would have freed via
    /// `expire(earliest)`.
    pub fn full_wakeup(&mut self, cycle: u64) -> Option<u64> {
        self.expire(cycle);
        if self.entries.len() < self.capacity {
            return None;
        }
        self.full_stalls += 1;
        let earliest = self
            .entries
            .iter()
            .map(|e| e.ready)
            .min()
            .expect("full MSHR file is non-empty");
        Some(earliest)
    }

    /// Outstanding (unexpired) entries at `cycle`.
    pub fn in_flight(&mut self, cycle: u64) -> usize {
        self.expire(cycle);
        self.entries.len()
    }

    /// Outstanding entries at `cycle` without mutating the file.
    ///
    /// Read-only counterpart of [`in_flight`](Self::in_flight) for
    /// diagnostics (e.g. the deadlock watchdog snapshotting machine
    /// state).
    pub fn outstanding_at(&self, cycle: u64) -> usize {
        self.entries.iter().filter(|e| e.ready > cycle).count()
    }

    /// Total merges recorded.
    pub fn merges(&self) -> u64 {
        self.merges
    }

    /// Total registers allocated.
    pub fn allocations(&self) -> u64 {
        self.allocations
    }

    /// Times a miss found the file full and was delayed.
    pub fn full_stalls(&self) -> u64 {
        self.full_stalls
    }

    /// Demand merges that caught an in-flight prefetch (late-but-useful
    /// prefetches).
    pub fn prefetch_useful_merges(&self) -> u64 {
        self.prefetch_useful_merges
    }

    /// Zero counters (in-flight entries are kept).
    pub fn reset_stats(&mut self) {
        self.merges = 0;
        self.allocations = 0;
        self.full_stalls = 0;
        self.prefetch_useful_merges = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(x: u64) -> LineAddr {
        LineAddr::new(x)
    }

    fn mshr(capacity: usize) -> Mshr {
        Mshr::new(capacity).expect("test MSHR capacity is valid")
    }

    #[test]
    fn merge_returns_inflight_ready() {
        let mut m = mshr(4);
        m.allocate(line(1), 0, 100, false);
        assert_eq!(m.merge(line(1), 50, false), Some(100));
        assert_eq!(m.merges(), 1);
    }

    #[test]
    fn expired_entries_do_not_merge() {
        let mut m = mshr(4);
        m.allocate(line(1), 0, 100, false);
        assert_eq!(m.merge(line(1), 100, false), None);
    }

    #[test]
    fn full_file_delays_new_misses() {
        let mut m = mshr(2);
        m.allocate(line(1), 0, 100, false);
        m.allocate(line(2), 0, 120, false);
        // Third miss at cycle 10 must wait until cycle 100 frees a slot:
        // its fill (nominally ready at 210) slips by 90.
        let ready = m.allocate(line(3), 10, 210, false);
        assert_eq!(ready, 300);
        assert_eq!(m.full_stalls(), 1);
    }

    #[test]
    fn free_file_does_not_delay() {
        let mut m = mshr(2);
        let ready = m.allocate(line(9), 5, 70, false);
        assert_eq!(ready, 70);
        assert_eq!(m.full_stalls(), 0);
    }

    #[test]
    fn demand_merge_clears_prefetch_flag() {
        let mut m = mshr(2);
        m.allocate(line(4), 0, 50, true);
        assert_eq!(m.merge(line(4), 10, false), Some(50));
        // Internal flag cleared; observable only through later behaviour,
        // but the merge itself must succeed.
        assert_eq!(m.in_flight(10), 1);
        assert_eq!(m.in_flight(50), 0);
    }

    #[test]
    fn zero_capacity_rejected() {
        let err = Mshr::new(0).unwrap_err();
        assert!(err.to_string().contains("capacity"), "{err}");
    }

    #[test]
    fn outstanding_at_matches_in_flight_without_mutation() {
        let mut m = mshr(4);
        m.allocate(line(1), 0, 100, false);
        m.allocate(line(2), 0, 200, false);
        assert_eq!(m.outstanding_at(50), 2);
        assert_eq!(m.outstanding_at(150), 1);
        assert_eq!(m.outstanding_at(250), 0);
        // The read-only probe must not expire entries.
        assert_eq!(m.in_flight(150), 1);
    }
}
