//! The set-associative cache core.
//!
//! [`Cache`] stores tags/state and delegates replacement to a
//! [`ReplacementPolicy`](crate::policy::ReplacementPolicy). Timing is
//! call-based: lookups and fills carry the current cycle, and the MSHR
//! file keeps in-flight misses visible so later requests merge with them.
//!
//! # Hot-path data layout
//!
//! Every simulated instruction probes several cache levels, so the
//! per-way scan is the hottest loop in the simulator. Tags and line
//! metadata are stored in *split parallel arrays*:
//!
//! * `tags: Vec<u64>` — one word per way, [`EMPTY_TAG`] (`u64::MAX`)
//!   marking an invalid way. A set's ways are contiguous, so a lookup
//!   scans `ways × 8` bytes of one or two cache lines with no `Option`
//!   discriminant and no pointer chasing.
//! * `meta: Vec<LineMeta>` — class/dirty/prefetched/reused bookkeeping,
//!   only touched on a hit or a fill.
//!
//! Set selection is a mask (`line & (sets - 1)`) rather than a modulo,
//! which is why [`Cache::new`] requires a power-of-two set count (the
//! machine-level `MachineConfig::validate` already guarantees it).

use atc_stats::recall::RecallProbe;
use atc_stats::ClassCounters;
use atc_types::{AccessClass, AccessInfo, LineAddr, SimError};

use crate::mshr::Mshr;
use crate::policy::{PolicyImpl, ReplacementPolicy};

/// Tag value marking an empty (invalid) way. Physical line addresses are
/// bounded far below this (57-bit VA space, frame allocator counts up),
/// so no real line can collide with it; `fill` debug-asserts that.
const EMPTY_TAG: u64 = u64::MAX;

/// A resident cache line's bookkeeping, parallel to its tag.
#[derive(Debug, Clone, Copy)]
struct LineMeta {
    class: AccessClass,
    dirty: bool,
    prefetched: bool,
    reused: bool,
}

impl LineMeta {
    /// Placeholder metadata behind an [`EMPTY_TAG`]; never read.
    const EMPTY: LineMeta = LineMeta {
        class: AccessClass::NonReplayData,
        dirty: false,
        prefetched: false,
        reused: false,
    };
}

/// Outcome of a combined MSHR-merge + tag probe (see [`Cache::probe`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Probe {
    /// The line hit (or merged with an in-flight fill): data is usable
    /// at the returned cycle.
    Ready(u64),
    /// The line missed. The set index and the first empty way observed
    /// during the probe's tag scan are carried along so the eventual
    /// [`Cache::insert_miss_at`] neither recomputes the set, rescans it
    /// for residency, nor rescans it for a free way.
    Miss {
        /// Set index of the missing line.
        set: usize,
        /// First empty way in the set, if any (a miss scans every way,
        /// so this is exactly what `find_empty_way` would report).
        empty: Option<usize>,
    },
}

/// Information about an evicted line, returned from fills so the caller
/// can account for write-backs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictedLine {
    /// The evicted block address.
    pub addr: LineAddr,
    /// Whether it was dirty (needs write-back).
    pub dirty: bool,
    /// The class that last filled it.
    pub class: AccessClass,
    /// Whether it was ever reused after its fill.
    pub reused: bool,
}

/// Bit position of `class` in the recall-class bitmask. Distinct for
/// every class *including* each page-table level, so filtering is exact
/// (unlike `stat_index`, which buckets non-leaf translations together).
#[inline]
fn class_bit(class: AccessClass) -> u16 {
    let bit = match class {
        AccessClass::NonReplayData => 0,
        AccessClass::ReplayData => 1,
        // Translation levels 1..=5 map to bits 2..=6.
        AccessClass::Translation(l) => 1 + l.number() as u32,
        AccessClass::Store => 7,
        AccessClass::Instruction => 8,
    };
    1 << bit
}

/// One level of the cache hierarchy.
#[derive(Debug)]
pub struct Cache {
    name: &'static str,
    sets: usize,
    ways: usize,
    latency: u64,
    /// `sets - 1`; valid because `sets` is a power of two.
    set_mask: u64,
    /// Per-way tags, `EMPTY_TAG` = invalid. Indexed `set * ways + way`.
    tags: Vec<u64>,
    /// Per-way metadata, parallel to `tags`.
    meta: Vec<LineMeta>,
    policy: PolicyImpl,
    mshr: Mshr,
    stats: ClassCounters,
    recall: Option<RecallProbe>,
    /// Bitmask of classes the recall probe tracks (see [`class_bit`]);
    /// all-ones when the probe tracks every class.
    recall_mask: u16,
    writebacks: u64,
    prefetch_fills: u64,
    prefetch_useful: u64,
    evictions_dead: u64,
    evictions_total: u64,
    evictions_dead_by_class: [u64; AccessClass::STAT_CLASSES],
    evictions_total_by_class: [u64; AccessClass::STAT_CLASSES],
    /// Demand fills (new insertions, not resident refills) by class;
    /// prefetch insertions are counted in `prefetch_fills` instead.
    fills_by_class: [u64; AccessClass::STAT_CLASSES],
    /// Translation (PTE) blocks evicted, indexed by the *incoming* fill
    /// that displaced them (see [`Cache::EVICTOR_SLOTS`]).
    translation_evicted_by: [u64; Cache::EVICTOR_SLOTS],
}

impl Cache {
    /// Create a cache level.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] if `sets`, `ways` or `mshr_entries`
    /// is zero, or if `sets` is not a power of two (set selection is a
    /// mask).
    pub fn new(
        name: &'static str,
        sets: usize,
        ways: usize,
        latency: u64,
        mshr_entries: usize,
        policy: impl Into<PolicyImpl>,
    ) -> Result<Self, SimError> {
        if sets == 0 || ways == 0 {
            return Err(SimError::config(format!(
                "{name}: cache geometry must be non-zero (sets={sets}, ways={ways})"
            )));
        }
        if !sets.is_power_of_two() {
            return Err(SimError::config(format!(
                "{name}: set count {sets} is not a power of two (set index is a mask)"
            )));
        }
        if ways > usize::BITS as usize {
            return Err(SimError::config(format!(
                "{name}: associativity {ways} exceeds {} (way scans use a word-wide mask)",
                usize::BITS
            )));
        }
        let mshr = Mshr::new(mshr_entries).map_err(|e| SimError::config(format!("{name}: {e}")))?;
        Ok(Cache {
            name,
            sets,
            ways,
            latency,
            set_mask: sets as u64 - 1,
            tags: vec![EMPTY_TAG; sets * ways],
            meta: vec![LineMeta::EMPTY; sets * ways],
            policy: policy.into(),
            mshr,
            stats: ClassCounters::default(),
            recall: None,
            recall_mask: u16::MAX,
            writebacks: 0,
            prefetch_fills: 0,
            prefetch_useful: 0,
            evictions_dead: 0,
            evictions_total: 0,
            evictions_dead_by_class: [0; AccessClass::STAT_CLASSES],
            evictions_total_by_class: [0; AccessClass::STAT_CLASSES],
            fills_by_class: [0; AccessClass::STAT_CLASSES],
            translation_evicted_by: [0; Cache::EVICTOR_SLOTS],
        })
    }

    /// Slots in [`translation_evicted_by`](Self::translation_evicted_by):
    /// one per [`AccessClass::stat_index`] value for demand evictors,
    /// plus a final slot for prefetch evictors of any class.
    pub const EVICTOR_SLOTS: usize = AccessClass::STAT_CLASSES + 1;

    /// Index of the prefetch slot in
    /// [`translation_evicted_by`](Self::translation_evicted_by).
    pub const PREFETCH_EVICTOR: usize = AccessClass::STAT_CLASSES;

    /// Cache name ("L1D", "L2C", "LLC").
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Hit latency in cycles.
    #[inline]
    pub fn latency(&self) -> u64 {
        self.latency
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.sets
    }

    /// Associativity.
    pub fn num_ways(&self) -> usize {
        self.ways
    }

    /// The replacement policy's reported name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Mutable access to the policy (for T-policy wrappers that need to
    /// poke RRPVs after fills — see `atc-core`).
    pub fn policy_mut(&mut self) -> &mut dyn ReplacementPolicy {
        self.policy.as_dyn_mut()
    }

    /// Attach a recall-distance probe restricted to the given classes
    /// (e.g. only leaf translations for Fig 5, only replays for Fig 7).
    /// Pass an empty slice to probe every class.
    pub fn enable_recall_probe(&mut self, cap: usize, classes: &[AccessClass]) {
        self.recall = Some(RecallProbe::new(self.sets, cap));
        self.recall_mask = if classes.is_empty() {
            u16::MAX
        } else {
            classes.iter().fold(0, |mask, &c| mask | class_bit(c))
        };
    }

    #[inline]
    fn recall_tracks(&self, class: AccessClass) -> bool {
        self.recall_mask & class_bit(class) != 0
    }

    #[inline]
    fn set_of(&self, line: LineAddr) -> usize {
        (line.raw() & self.set_mask) as usize
    }

    #[inline]
    fn slot(&self, set: usize, way: usize) -> usize {
        set * self.ways + way
    }

    /// Way holding `line` in `set`, if resident — a contiguous scan over
    /// the set's tag words.
    #[inline]
    fn find_way(&self, set: usize, line: LineAddr) -> Option<usize> {
        let base = set * self.ways;
        self.tags[base..base + self.ways]
            .iter()
            .position(|&t| t == line.raw())
    }

    /// First empty way in `set`, if any.
    #[inline]
    fn find_empty_way(&self, set: usize) -> Option<usize> {
        let base = set * self.ways;
        self.tags[base..base + self.ways]
            .iter()
            .position(|&t| t == EMPTY_TAG)
    }

    /// One scan over `set`: `Ok(way)` if `line` is resident, else
    /// `Err(first_empty_way)`. A miss visits every way, so the empty way
    /// falls out of the same pass and matches [`find_empty_way`]
    /// (`Self::find_empty_way`) exactly.
    #[inline]
    fn find_way_or_empty(&self, set: usize, line: LineAddr) -> Result<usize, Option<usize>> {
        let base = set * self.ways;
        // Branchless empty tracking: a bitmask of empty ways accumulates
        // alongside the match scan (associativity never exceeds the word
        // width), and the first empty way is its lowest set bit.
        let mut empty_mask = 0usize;
        for (w, &t) in self.tags[base..base + self.ways].iter().enumerate() {
            if t == line.raw() {
                return Ok(w);
            }
            empty_mask |= usize::from(t == EMPTY_TAG) << w;
        }
        Err((empty_mask != 0).then(|| empty_mask.trailing_zeros() as usize))
    }

    /// If `info.line` has an in-flight MSHR fill at `cycle`, merge and
    /// return its completion cycle. Counts as a miss for statistics (the
    /// block is not yet usable).
    pub fn mshr_merge(&mut self, info: &AccessInfo, cycle: u64) -> Option<u64> {
        let ready = self.mshr.merge(info.line, cycle, info.is_prefetch)?;
        if !info.is_prefetch {
            self.stats.record(info.class, false);
        }
        Some(ready)
    }

    /// Look up `info.line` at `cycle`. On a hit, returns the completion
    /// cycle (`cycle + latency`) and updates promotion/statistics. On a
    /// miss returns `None` (statistics updated; caller descends the
    /// hierarchy and then calls [`insert_miss`](Self::insert_miss)).
    pub fn lookup(&mut self, info: &AccessInfo, cycle: u64) -> Option<u64> {
        let set = self.set_of(info.line);
        self.lookup_at(set, info, cycle)
    }

    /// One combined miss-path probe: MSHR merge first (an in-flight fill
    /// answers before the tags are consulted, exactly like
    /// [`mshr_merge`](Self::mshr_merge) followed by
    /// [`lookup`](Self::lookup)), then a tag lookup. On a miss the set
    /// index is returned for the caller to pass to
    /// [`insert_miss_at`](Self::insert_miss_at).
    #[inline]
    pub fn probe(&mut self, info: &AccessInfo, cycle: u64) -> Probe {
        if let Some(ready) = self.mshr_merge(info, cycle) {
            return Probe::Ready(ready);
        }
        let set = self.set_of(info.line);
        self.feed_recall(set, info);
        match self.probe_set(set, info, cycle) {
            Ok(ready) => Probe::Ready(ready),
            Err(empty) => Probe::Miss { set, empty },
        }
    }

    /// [`probe`](Self::probe) for a cache known to carry no recall
    /// probe — the batched run loop's L1D entry point (the machine only
    /// ever attaches recall probes at the L2C/LLC/STLB). Statistics,
    /// promotion and MSHR behaviour are identical to `probe`; the only
    /// thing skipped is the per-access recall branch.
    #[inline]
    pub fn probe_fast(&mut self, info: &AccessInfo, cycle: u64) -> Probe {
        debug_assert!(
            self.recall.is_none(),
            "probe_fast on a cache with a recall probe attached"
        );
        if let Some(ready) = self.mshr_merge(info, cycle) {
            return Probe::Ready(ready);
        }
        let set = self.set_of(info.line);
        match self.probe_set(set, info, cycle) {
            Ok(ready) => Probe::Ready(ready),
            Err(empty) => Probe::Miss { set, empty },
        }
    }

    /// Feed a demand access to the recall probe, if one is attached and
    /// tracks this class. Recall distance is a property of the demand
    /// stream, so prefetches are never fed.
    #[inline]
    fn feed_recall(&mut self, set: usize, info: &AccessInfo) {
        if !info.is_prefetch && self.recall.is_some() && self.recall_tracks(info.class) {
            if let Some(probe) = &mut self.recall {
                probe.on_access(set, info.line);
            }
        }
    }

    /// [`lookup`](Self::lookup) with the set index already computed.
    fn lookup_at(&mut self, set: usize, info: &AccessInfo, cycle: u64) -> Option<u64> {
        self.feed_recall(set, info);
        self.probe_set(set, info, cycle).ok()
    }

    /// Single-scan lookup core: `Ok(ready)` on a hit (statistics and
    /// promotion updated), `Err(first_empty_way)` on a miss (miss
    /// recorded). The empty way rides along from the same tag scan so
    /// the eventual [`insert_miss_at`](Self::insert_miss_at) does not
    /// rescan the set for a free way.
    #[inline]
    fn probe_set(
        &mut self,
        set: usize,
        info: &AccessInfo,
        cycle: u64,
    ) -> Result<u64, Option<usize>> {
        match self.find_way_or_empty(set, info.line) {
            Ok(w) => {
                if !info.is_prefetch {
                    self.stats.record(info.class, true);
                }
                let slot = self.slot(set, w);
                let m = self.meta[slot];
                if m.prefetched && !m.reused && !info.is_prefetch {
                    self.prefetch_useful += 1;
                }
                let m = &mut self.meta[slot];
                if !info.is_prefetch {
                    m.reused = true;
                }
                if info.class == AccessClass::Store {
                    m.dirty = true;
                }
                self.policy.on_hit(set, w, info);
                Ok(cycle + self.latency)
            }
            Err(empty) => {
                if !info.is_prefetch {
                    self.stats.record(info.class, false);
                }
                Err(empty)
            }
        }
    }

    /// Probe for residency without perturbing statistics, LRU state, or
    /// the recall probe.
    #[inline]
    pub fn contains(&self, line: LineAddr) -> bool {
        self.find_way(self.set_of(line), line).is_some()
    }

    /// Handle a miss: allocate an MSHR entry completing at `ready`
    /// (possibly delayed if the file is full), fill the line, and return
    /// `(completion_cycle, evicted_line)`.
    ///
    /// The caller must have ruled out an in-flight fill for the line
    /// first — via [`probe`](Self::probe) (which merges before the tag
    /// lookup) or an explicit [`mshr_merge`](Self::mshr_merge) — exactly
    /// as every hierarchy access path does.
    pub fn insert_miss(
        &mut self,
        info: &AccessInfo,
        ready: u64,
        cycle: u64,
    ) -> (u64, Option<EvictedLine>) {
        let ready = self
            .mshr
            .allocate(info.line, cycle, ready, info.is_prefetch);
        let evicted = self.fill(info);
        (ready, evicted)
    }

    /// Event-wheel probe for a full MSHR file: if a fill at `cycle`
    /// would stall for a free register, count the stall and return the
    /// wakeup cycle so the caller can schedule the fill there (see
    /// [`Mshr::full_wakeup`](crate::Mshr::full_wakeup)). `None` means
    /// the fill can proceed immediately via
    /// [`insert_miss_at`](Self::insert_miss_at).
    pub fn mshr_full_wakeup(&mut self, cycle: u64) -> Option<u64> {
        self.mshr.full_wakeup(cycle)
    }

    /// [`insert_miss`](Self::insert_miss) for a line a just-failed
    /// [`probe`](Self::probe) reported missing from `set` with `empty`
    /// as the first free way: the fill skips the set-index computation,
    /// the residency rescan, and the empty-way rescan (nothing can have
    /// filled into the set between the probe and this call on the
    /// single-threaded access path — each level is probed once and
    /// filled once per access).
    pub fn insert_miss_at(
        &mut self,
        set: usize,
        empty: Option<usize>,
        info: &AccessInfo,
        ready: u64,
        cycle: u64,
    ) -> (u64, Option<EvictedLine>) {
        let ready = self
            .mshr
            .allocate(info.line, cycle, ready, info.is_prefetch);
        debug_assert_eq!(set, self.set_of(info.line), "probe/fill set mismatch");
        debug_assert!(
            self.find_way(set, info.line).is_none(),
            "insert_miss_at on a resident line"
        );
        debug_assert_eq!(
            empty,
            self.find_empty_way(set),
            "probe/fill empty-way mismatch"
        );
        let evicted = self.fill_new(set, empty, info);
        (ready, evicted)
    }

    /// Fill `info.line` into its set, evicting if necessary. Returns the
    /// eviction, if any. Exposed separately for oracles and tests; the
    /// normal miss path is [`insert_miss`](Self::insert_miss).
    pub fn fill(&mut self, info: &AccessInfo) -> Option<EvictedLine> {
        debug_assert_ne!(
            info.line.raw(),
            EMPTY_TAG,
            "line address collides with the empty-way sentinel"
        );
        let set = self.set_of(info.line);
        // One scan finds both the resident way (refill) and, failing
        // that, the first empty way — instead of a residency scan
        // followed by a separate empty-way scan.
        let base = set * self.ways;
        let mut empty = None;
        let mut resident = None;
        for (w, &t) in self.tags[base..base + self.ways].iter().enumerate() {
            if t == info.line.raw() {
                resident = Some(w);
                break;
            }
            if empty.is_none() && t == EMPTY_TAG {
                empty = Some(w);
            }
        }
        // Refill of a resident line (e.g. prefetch raced demand): just
        // update class/flags. The class must follow the latest fill so
        // eviction/dead-block accounting attributes the block correctly,
        // and a demand refill consumes any prefetched status.
        if let Some(w) = resident {
            let slot = self.slot(set, w);
            let m = &mut self.meta[slot];
            m.class = info.class;
            m.dirty |= info.class == AccessClass::Store;
            if !info.is_prefetch {
                m.prefetched = false;
            }
            return None;
        }
        self.fill_new(set, empty, info)
    }

    /// Insert a non-resident line into `set`, using `empty` if the scan
    /// found a free way, else evicting the policy's victim.
    fn fill_new(
        &mut self,
        set: usize,
        empty: Option<usize>,
        info: &AccessInfo,
    ) -> Option<EvictedLine> {
        debug_assert_ne!(
            info.line.raw(),
            EMPTY_TAG,
            "line address collides with the empty-way sentinel"
        );
        let way = match empty {
            Some(w) => w,
            None => {
                let w = self.policy.victim(set, info);
                assert!(w < self.ways, "policy returned way {w} ≥ {}", self.ways);
                w
            }
        };
        let slot = self.slot(set, way);
        let evicted = if self.tags[slot] != EMPTY_TAG {
            let old_addr = LineAddr::new(self.tags[slot]);
            let old = self.meta[slot];
            self.policy.on_evict(set, way);
            self.evictions_total += 1;
            self.evictions_total_by_class[old.class.stat_index()] += 1;
            if old.class.is_translation() {
                let evictor = if info.is_prefetch {
                    Cache::PREFETCH_EVICTOR
                } else {
                    info.class.stat_index()
                };
                self.translation_evicted_by[evictor] += 1;
            }
            if !old.reused {
                self.evictions_dead += 1;
                self.evictions_dead_by_class[old.class.stat_index()] += 1;
            }
            if old.dirty {
                self.writebacks += 1;
            }
            if self.recall_tracks(old.class) {
                if let Some(probe) = &mut self.recall {
                    probe.on_evict(set, old_addr);
                }
            }
            Some(EvictedLine {
                addr: old_addr,
                dirty: old.dirty,
                class: old.class,
                reused: old.reused,
            })
        } else {
            None
        };
        self.tags[slot] = info.line.raw();
        self.meta[slot] = LineMeta {
            class: info.class,
            dirty: info.class == AccessClass::Store,
            prefetched: info.is_prefetch,
            reused: false,
        };
        self.policy.on_fill(set, way, info);
        if info.is_prefetch {
            self.prefetch_fills += 1;
        } else {
            self.fills_by_class[info.class.stat_index()] += 1;
        }
        evicted
    }

    /// `(set, way)` of a resident line, if present — used by T-policies
    /// to adjust a just-filled block's RRPV.
    pub fn locate(&self, line: LineAddr) -> Option<(usize, usize)> {
        let set = self.set_of(line);
        self.find_way(set, line).map(|w| (set, w))
    }

    /// Per-class hit/miss statistics.
    pub fn stats(&self) -> &ClassCounters {
        &self.stats
    }

    /// Write-backs performed.
    pub fn writebacks(&self) -> u64 {
        self.writebacks
    }

    /// `(prefetch fills, useful prefetches)` — useful = demand hit on a
    /// not-yet-reused prefetched line, plus demand merges that caught an
    /// in-flight prefetch (late-but-useful).
    pub fn prefetch_stats(&self) -> (u64, u64) {
        (
            self.prefetch_fills,
            self.prefetch_useful + self.mshr.prefetch_useful_merges(),
        )
    }

    /// `(dead evictions, total evictions)`: dead = never reused after
    /// fill (the paper's §III "blocks storing replay loads are dead"
    /// metric).
    pub fn eviction_stats(&self) -> (u64, u64) {
        (self.evictions_dead, self.evictions_total)
    }

    /// `(dead evictions, total evictions)` restricted to blocks whose
    /// fill was of `class`.
    pub fn eviction_stats_for(&self, class: AccessClass) -> (u64, u64) {
        let i = class.stat_index();
        (
            self.evictions_dead_by_class[i],
            self.evictions_total_by_class[i],
        )
    }

    /// `(dead evictions, total evictions)` of translation (PTE) blocks,
    /// summed over every page-table level.
    pub fn pte_eviction_stats(&self) -> (u64, u64) {
        let leaf = AccessClass::Translation(atc_types::PtLevel::L1).stat_index();
        let upper = AccessClass::Translation(atc_types::PtLevel::L2).stat_index();
        (
            self.evictions_dead_by_class[leaf] + self.evictions_dead_by_class[upper],
            self.evictions_total_by_class[leaf] + self.evictions_total_by_class[upper],
        )
    }

    /// Demand fills (new insertions) by [`AccessClass::stat_index`];
    /// prefetch insertions are in [`prefetch_stats`](Self::prefetch_stats).
    pub fn fills_by_class(&self) -> &[u64; AccessClass::STAT_CLASSES] {
        &self.fills_by_class
    }

    /// Translation (PTE) evictions indexed by the incoming fill that
    /// displaced them: [`AccessClass::stat_index`] for demand fills,
    /// [`Cache::PREFETCH_EVICTOR`] for prefetches.
    pub fn translation_evicted_by(&self) -> &[u64; Cache::EVICTOR_SLOTS] {
        &self.translation_evicted_by
    }

    /// The MSHR file (diagnostics).
    pub fn mshr(&self) -> &Mshr {
        &self.mshr
    }

    /// Zero all measurement counters while keeping cache contents and
    /// policy state (used after simulation warmup).
    pub fn reset_stats(&mut self) {
        self.stats = ClassCounters::default();
        self.mshr.reset_stats();
        self.writebacks = 0;
        self.prefetch_fills = 0;
        self.prefetch_useful = 0;
        self.evictions_dead = 0;
        self.evictions_total = 0;
        self.evictions_dead_by_class = [0; AccessClass::STAT_CLASSES];
        self.evictions_total_by_class = [0; AccessClass::STAT_CLASSES];
        self.fills_by_class = [0; AccessClass::STAT_CLASSES];
        self.translation_evicted_by = [0; Cache::EVICTOR_SLOTS];
    }

    /// The recall probe, if enabled.
    pub fn recall_probe(&self) -> Option<&RecallProbe> {
        self.recall.as_ref()
    }

    /// Mutable recall probe (to flush open windows at end of run).
    pub fn recall_probe_mut(&mut self) -> Option<&mut RecallProbe> {
        self.recall.as_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Lru;
    use atc_types::PtLevel;

    fn mk(sets: usize, ways: usize) -> Cache {
        Cache::new("T", sets, ways, 10, 4, Lru::new(sets, ways)).expect("test geometry is valid")
    }

    #[test]
    fn bad_geometry_is_an_error_not_a_panic() {
        let err = Cache::new("T", 0, 2, 10, 4, Lru::new(1, 2)).unwrap_err();
        assert!(err.to_string().contains("geometry"), "{err}");
        let err = Cache::new("T", 4, 2, 10, 0, Lru::new(4, 2)).unwrap_err();
        assert!(err.to_string().contains("capacity"), "{err}");
    }

    #[test]
    fn non_power_of_two_sets_is_an_error() {
        let err = Cache::new("T", 3, 2, 10, 4, Lru::new(3, 2)).unwrap_err();
        assert!(err.to_string().contains("power of two"), "{err}");
    }

    fn load(line: u64) -> AccessInfo {
        AccessInfo::demand(0x400, LineAddr::new(line), AccessClass::NonReplayData)
    }

    #[test]
    fn miss_fill_hit_cycle_accounting() {
        let mut c = mk(4, 2);
        let a = load(64);
        assert_eq!(c.lookup(&a, 100), None);
        let (ready, ev) = c.insert_miss(&a, 300, 100);
        assert_eq!(ready, 300);
        assert!(ev.is_none());
        assert_eq!(c.lookup(&a, 400), Some(410));
        assert_eq!(c.stats().hits(AccessClass::NonReplayData), 1);
        assert_eq!(c.stats().misses(AccessClass::NonReplayData), 1);
    }

    #[test]
    fn probe_fast_matches_probe_without_a_recall_probe() {
        // Two identical caches driven by the same stream, one through
        // `probe`, one through `probe_fast`: outcomes and statistics
        // must stay in lockstep (hits, misses, MSHR merges, fills).
        let mut a = mk(4, 2);
        let mut b = mk(4, 2);
        let stream: &[(u64, u64)] = &[
            (64, 0),
            (64, 5),    // merge while in flight
            (64, 400),  // hit after fill
            (128, 410), // same set, miss
            (320, 420), // evicts
            (64, 430),
        ];
        for &(line, cycle) in stream {
            let info = load(line);
            let pa = a.probe(&info, cycle);
            let pb = b.probe_fast(&info, cycle);
            assert_eq!(pa, pb, "line {line} at {cycle}");
            if let Probe::Miss { set, empty } = pa {
                let fa = a.insert_miss_at(set, empty, &info, cycle + 200, cycle);
                let fb = b.insert_miss_at(set, empty, &info, cycle + 200, cycle);
                assert_eq!(fa, fb);
            }
        }
        assert_eq!(format!("{:?}", a.stats()), format!("{:?}", b.stats()));
        assert_eq!(a.mshr().merges(), b.mshr().merges());
        assert_eq!(a.mshr().allocations(), b.mshr().allocations());
    }

    #[test]
    fn mshr_merge_before_ready() {
        let mut c = mk(4, 2);
        let a = load(64);
        c.lookup(&a, 0);
        c.insert_miss(&a, 200, 0);
        // While in flight, another request merges instead of hitting.
        assert_eq!(c.mshr_merge(&a, 100), Some(200));
        // After completion the merge path no longer applies.
        assert_eq!(c.mshr_merge(&a, 200), None);
        assert!(c.lookup(&a, 201).is_some());
    }

    #[test]
    fn eviction_reports_dirty_and_reuse() {
        let mut c = mk(1, 1);
        let mut store = load(1);
        store.class = AccessClass::Store;
        c.fill(&store);
        // Evict by filling a different line.
        let ev = c.fill(&load(2)).expect("eviction");
        assert!(ev.dirty);
        assert!(!ev.reused);
        assert_eq!(ev.class, AccessClass::Store);
        assert_eq!(c.writebacks(), 1);
        assert_eq!(c.eviction_stats(), (1, 1));
    }

    #[test]
    fn reused_block_not_counted_dead() {
        let mut c = mk(1, 1);
        c.fill(&load(1));
        c.lookup(&load(1), 0);
        c.fill(&load(2));
        assert_eq!(c.eviction_stats(), (0, 1));
    }

    #[test]
    fn associativity_is_bounded() {
        let mut c = mk(2, 2);
        // Four lines mapping to set 0 (even addresses).
        for i in 0..4u64 {
            c.fill(&load(i * 2));
        }
        let resident = (0..4u64)
            .filter(|&i| c.contains(LineAddr::new(i * 2)))
            .count();
        assert_eq!(resident, 2);
    }

    #[test]
    fn prefetch_fill_then_demand_hit_counts_useful() {
        let mut c = mk(4, 2);
        let p = AccessInfo::prefetch(0, LineAddr::new(8), AccessClass::ReplayData);
        c.insert_miss(&p, 50, 0);
        assert_eq!(c.prefetch_stats(), (1, 0));
        // Prefetch lookups don't pollute class stats.
        assert_eq!(c.stats().total_accesses(), 0);
        let d = AccessInfo::demand(1, LineAddr::new(8), AccessClass::ReplayData);
        assert!(c.lookup(&d, 100).is_some());
        assert_eq!(c.prefetch_stats(), (1, 1));
    }

    #[test]
    fn store_hit_marks_dirty() {
        let mut c = mk(4, 2);
        c.fill(&load(4));
        let mut st = load(4);
        st.class = AccessClass::Store;
        c.lookup(&st, 0);
        // Set 0 has ways {4}; fill 8 (second way) then 12 to force the
        // eviction of line 4 (LRU after the store hit refreshed... fill 8
        // makes it newer, so 4 is LRU).
        c.fill(&load(8));
        let ev = c.fill(&load(12)).expect("line 4 evicted");
        assert_eq!(ev.addr, LineAddr::new(4));
        assert!(ev.dirty);
    }

    #[test]
    fn refill_of_resident_line_evicts_nothing() {
        let mut c = mk(2, 2);
        c.fill(&load(2));
        assert!(c.fill(&load(2)).is_none());
        assert!(c.contains(LineAddr::new(2)));
    }

    #[test]
    fn demand_refill_updates_class_and_consumes_prefetched_state() {
        // Regression: the resident-refill path used to update only
        // `dirty`, leaving the prefetch's class in eviction accounting
        // and the `prefetched` flag armed.
        let mut c = mk(1, 1);
        let pf = AccessInfo::prefetch(0, LineAddr::new(5), AccessClass::NonReplayData);
        c.fill(&pf);
        // Demand refill of the resident line with a different class.
        let demand = AccessInfo::demand(1, LineAddr::new(5), AccessClass::ReplayData);
        assert!(c.fill(&demand).is_none());
        // The refill consumed the block: a later demand hit is not a
        // "useful prefetch" anymore.
        c.lookup(&demand, 0);
        assert_eq!(c.prefetch_stats(), (1, 0));
        // Eviction accounting attributes the block to the demand class.
        let ev = c.fill(&load(7)).expect("eviction");
        assert_eq!(ev.class, AccessClass::ReplayData);
        assert_eq!(c.eviction_stats_for(AccessClass::ReplayData), (0, 1));
        assert_eq!(c.eviction_stats_for(AccessClass::NonReplayData), (0, 0));
    }

    #[test]
    fn prefetch_refill_keeps_prefetched_state() {
        let mut c = mk(1, 1);
        let pf = AccessInfo::prefetch(0, LineAddr::new(5), AccessClass::ReplayData);
        c.fill(&pf);
        c.fill(&pf);
        // Still counts as a useful prefetch when demand arrives.
        let d = AccessInfo::demand(1, LineAddr::new(5), AccessClass::ReplayData);
        assert!(c.lookup(&d, 0).is_some());
        assert_eq!(c.prefetch_stats().1, 1);
    }

    #[test]
    fn recall_probe_filters_classes() {
        let mut c = mk(1, 1);
        c.enable_recall_probe(32, &[AccessClass::Translation(PtLevel::L1)]);
        // Data line evicted: not tracked.
        c.fill(&load(1));
        c.fill(&load(2));
        assert_eq!(c.recall_probe().unwrap().open_windows(), 0);
        // Translation line evicted: tracked.
        let t = AccessInfo::demand(9, LineAddr::new(3), AccessClass::Translation(PtLevel::L1));
        c.fill(&t);
        c.fill(&load(4));
        assert_eq!(c.recall_probe().unwrap().open_windows(), 1);
    }

    #[test]
    fn recall_class_mask_distinguishes_translation_levels() {
        // The bitmask must be exact per page-table level, not bucketed
        // like `stat_index` (which merges non-leaf levels).
        let mut c = mk(1, 1);
        c.enable_recall_probe(32, &[AccessClass::Translation(PtLevel::L2)]);
        let l3 = AccessInfo::demand(9, LineAddr::new(1), AccessClass::Translation(PtLevel::L3));
        c.fill(&l3);
        c.fill(&load(2));
        assert_eq!(c.recall_probe().unwrap().open_windows(), 0);
        let l2 = AccessInfo::demand(9, LineAddr::new(3), AccessClass::Translation(PtLevel::L2));
        c.fill(&l2);
        c.fill(&load(4));
        assert_eq!(c.recall_probe().unwrap().open_windows(), 1);
    }

    #[test]
    fn fills_counted_by_class_excluding_refills_and_prefetches() {
        let mut c = mk(1, 2);
        c.fill(&load(1));
        c.fill(&load(1)); // resident refill: not a new fill
        let t = AccessInfo::demand(9, LineAddr::new(3), AccessClass::Translation(PtLevel::L1));
        c.fill(&t);
        let pf = AccessInfo::prefetch(0, LineAddr::new(5), AccessClass::ReplayData);
        c.fill(&pf); // prefetch insertion: counted as prefetch, not class
        let fills = c.fills_by_class();
        assert_eq!(fills[AccessClass::NonReplayData.stat_index()], 1);
        assert_eq!(fills[t.class.stat_index()], 1);
        assert_eq!(fills[AccessClass::ReplayData.stat_index()], 0);
        assert_eq!(c.prefetch_stats().0, 1);
    }

    #[test]
    fn translation_evictions_attributed_to_incoming_fill() {
        let mut c = mk(1, 1);
        let t = AccessInfo::demand(9, LineAddr::new(1), AccessClass::Translation(PtLevel::L1));
        // PTE evicted by a demand load.
        c.fill(&t);
        c.fill(&load(2));
        // PTE evicted by a prefetch.
        c.fill(&t);
        let pf = AccessInfo::prefetch(0, LineAddr::new(4), AccessClass::ReplayData);
        c.fill(&pf);
        // Data evicted by data: no PTE attribution.
        c.fill(&load(6));
        let by = c.translation_evicted_by();
        assert_eq!(by[AccessClass::NonReplayData.stat_index()], 1);
        assert_eq!(by[Cache::PREFETCH_EVICTOR], 1);
        assert_eq!(by.iter().sum::<u64>(), 2);
        assert_eq!(c.pte_eviction_stats(), (2, 2), "both PTEs died unreused");
    }

    #[test]
    fn pte_eviction_stats_sum_all_levels() {
        let mut c = mk(1, 1);
        let leaf = AccessInfo::demand(9, LineAddr::new(1), AccessClass::Translation(PtLevel::L1));
        let upper = AccessInfo::demand(9, LineAddr::new(3), AccessClass::Translation(PtLevel::L4));
        c.fill(&leaf);
        c.lookup(&leaf, 0); // reused
        c.fill(&upper); // evicts leaf (reused)
        c.fill(&load(5)); // evicts upper (dead)
        assert_eq!(c.pte_eviction_stats(), (1, 2));
        c.reset_stats();
        assert_eq!(c.pte_eviction_stats(), (0, 0));
        assert_eq!(c.fills_by_class().iter().sum::<u64>(), 0);
        assert_eq!(c.translation_evicted_by().iter().sum::<u64>(), 0);
    }

    #[test]
    fn locate_finds_resident_way() {
        let mut c = mk(4, 2);
        c.fill(&load(12));
        let (set, way) = c.locate(LineAddr::new(12)).unwrap();
        assert_eq!(set, 0);
        assert!(way < 2);
        assert_eq!(c.locate(LineAddr::new(999)), None);
    }
}
