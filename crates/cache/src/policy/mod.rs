//! Cache replacement policies.
//!
//! A policy owns the per-line replacement metadata for a cache of known
//! geometry and is driven by three events, matching the paper's
//! insertion / promotion / eviction decomposition:
//!
//! * [`on_fill`](ReplacementPolicy::on_fill) — a block was inserted
//!   (insertion sub-policy);
//! * [`on_hit`](ReplacementPolicy::on_hit) — a resident block was reused
//!   (promotion sub-policy);
//! * [`victim`](ReplacementPolicy::victim) — choose a way to evict from a
//!   full set (eviction sub-policy), followed by
//!   [`on_evict`](ReplacementPolicy::on_evict) for training.

mod hawkeye;
mod lru;
mod rrip;
mod ship;

pub use hawkeye::{Hawkeye, HK_RRPV_MAX};
pub use lru::Lru;
pub use rrip::{Brrip, Drrip, Srrip, RRPV_LONG, RRPV_MAX};
pub use ship::Ship;

use atc_types::AccessInfo;

/// A pluggable cache replacement policy.
///
/// Implementations are constructed for a fixed geometry (`sets × ways`)
/// and must keep any per-line metadata themselves; the cache core only
/// stores tags. All way indices are `< ways` and set indices `< sets`.
pub trait ReplacementPolicy: std::fmt::Debug + Send {
    /// Short policy name used in reports ("LRU", "DRRIP", "T-SHiP", …).
    fn name(&self) -> &'static str;

    /// A block was filled into `(set, way)` by the access described in
    /// `info`.
    fn on_fill(&mut self, set: usize, way: usize, info: &AccessInfo);

    /// The resident block at `(set, way)` got a hit from `info`.
    fn on_hit(&mut self, set: usize, way: usize, info: &AccessInfo);

    /// Choose a victim way in a *full* `set` for the incoming access
    /// `info`. Implementations may mutate internal state (e.g. RRIP
    /// aging).
    fn victim(&mut self, set: usize, info: &AccessInfo) -> usize;

    /// The block at `(set, way)` has been evicted (after [`victim`] or an
    /// external invalidation). Policies use this for negative training.
    fn on_evict(&mut self, set: usize, way: usize);
}

/// Dispatch wrapper the cache core stores its policy behind.
///
/// The stock policies the hot configurations use (LRU at L1D, the RRIP
/// family at L2C, SHiP at the LLC) get their own variants so every
/// `on_hit`/`victim`/`on_fill`/`on_evict` on the access path is a
/// statically-dispatched — and inlinable — call instead of a virtual
/// one; anything else (T-policies, Hawkeye, CbPred, test doubles) rides
/// in the [`Dyn`](PolicyImpl::Dyn) variant with unchanged behaviour.
#[derive(Debug)]
pub enum PolicyImpl {
    /// Least-recently-used.
    Lru(Lru),
    /// Static RRIP.
    Srrip(Srrip),
    /// Dynamic (set-dueling) RRIP.
    Drrip(Drrip),
    /// SHiP (either signature mode).
    Ship(Ship),
    /// Everything else, virtually dispatched.
    Dyn(Box<dyn ReplacementPolicy>),
}

macro_rules! dispatch {
    ($self:expr, $p:ident => $call:expr) => {
        match $self {
            PolicyImpl::Lru($p) => $call,
            PolicyImpl::Srrip($p) => $call,
            PolicyImpl::Drrip($p) => $call,
            PolicyImpl::Ship($p) => $call,
            PolicyImpl::Dyn($p) => $call,
        }
    };
}

impl PolicyImpl {
    /// Short policy name used in reports.
    pub fn name(&self) -> &'static str {
        dispatch!(self, p => p.name())
    }

    /// Forward of [`ReplacementPolicy::on_fill`].
    #[inline]
    pub fn on_fill(&mut self, set: usize, way: usize, info: &AccessInfo) {
        dispatch!(self, p => p.on_fill(set, way, info));
    }

    /// Forward of [`ReplacementPolicy::on_hit`].
    #[inline]
    pub fn on_hit(&mut self, set: usize, way: usize, info: &AccessInfo) {
        dispatch!(self, p => p.on_hit(set, way, info));
    }

    /// Forward of [`ReplacementPolicy::victim`].
    #[inline]
    pub fn victim(&mut self, set: usize, info: &AccessInfo) -> usize {
        dispatch!(self, p => p.victim(set, info))
    }

    /// Forward of [`ReplacementPolicy::on_evict`].
    #[inline]
    pub fn on_evict(&mut self, set: usize, way: usize) {
        dispatch!(self, p => p.on_evict(set, way));
    }

    /// The policy as a trait object (T-policy helpers, tests).
    pub fn as_dyn_mut(&mut self) -> &mut dyn ReplacementPolicy {
        match self {
            PolicyImpl::Lru(p) => p,
            PolicyImpl::Srrip(p) => p,
            PolicyImpl::Drrip(p) => p,
            PolicyImpl::Ship(p) => p,
            PolicyImpl::Dyn(p) => p.as_mut(),
        }
    }
}

impl From<Lru> for PolicyImpl {
    fn from(p: Lru) -> Self {
        PolicyImpl::Lru(p)
    }
}

impl From<Srrip> for PolicyImpl {
    fn from(p: Srrip) -> Self {
        PolicyImpl::Srrip(p)
    }
}

impl From<Drrip> for PolicyImpl {
    fn from(p: Drrip) -> Self {
        PolicyImpl::Drrip(p)
    }
}

impl From<Ship> for PolicyImpl {
    fn from(p: Ship) -> Self {
        PolicyImpl::Ship(p)
    }
}

impl From<Box<dyn ReplacementPolicy>> for PolicyImpl {
    fn from(p: Box<dyn ReplacementPolicy>) -> Self {
        PolicyImpl::Dyn(p)
    }
}

/// Saturating counter helper used by SHiP/Hawkeye predictors and DRRIP's
/// PSEL.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SatCounter {
    value: u32,
    max: u32,
}

impl SatCounter {
    /// A counter in `0..=max` starting at `initial`.
    ///
    /// # Panics
    ///
    /// Panics if `initial > max`.
    pub fn new(initial: u32, max: u32) -> Self {
        assert!(initial <= max);
        SatCounter {
            value: initial,
            max,
        }
    }

    /// Saturating increment.
    #[inline]
    pub fn inc(&mut self) {
        if self.value < self.max {
            self.value += 1;
        }
    }

    /// Saturating decrement.
    #[inline]
    pub fn dec(&mut self) {
        self.value = self.value.saturating_sub(1);
    }

    /// Current value.
    #[inline]
    pub fn get(self) -> u32 {
        self.value
    }

    /// True if the counter is in its upper half (≥ (max+1)/2).
    #[inline]
    pub fn is_high(self) -> bool {
        self.value >= self.max.div_ceil(2)
    }
}

/// A stable 64→16-bit hash for signature tables (xorshift-multiply fold).
#[inline]
pub fn fold_hash16(x: u64) -> u16 {
    let mut h = x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h ^= h >> 29;
    h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^= h >> 32;
    (h & 0xFFFF) as u16
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sat_counter_bounds() {
        let mut c = SatCounter::new(0, 3);
        c.dec();
        assert_eq!(c.get(), 0);
        for _ in 0..10 {
            c.inc();
        }
        assert_eq!(c.get(), 3);
        assert!(c.is_high());
        c.dec();
        c.dec();
        assert_eq!(c.get(), 1);
        assert!(!c.is_high());
    }

    #[test]
    #[should_panic]
    fn sat_counter_rejects_bad_initial() {
        SatCounter::new(5, 3);
    }

    #[test]
    fn fold_hash_spreads_low_bit_changes() {
        // Not a distribution test, just non-triviality.
        assert_ne!(fold_hash16(1), fold_hash16(2));
        assert_ne!(fold_hash16(0x1000), fold_hash16(0x1001));
    }
}
