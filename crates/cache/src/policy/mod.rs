//! Cache replacement policies.
//!
//! A policy owns the per-line replacement metadata for a cache of known
//! geometry and is driven by three events, matching the paper's
//! insertion / promotion / eviction decomposition:
//!
//! * [`on_fill`](ReplacementPolicy::on_fill) — a block was inserted
//!   (insertion sub-policy);
//! * [`on_hit`](ReplacementPolicy::on_hit) — a resident block was reused
//!   (promotion sub-policy);
//! * [`victim`](ReplacementPolicy::victim) — choose a way to evict from a
//!   full set (eviction sub-policy), followed by
//!   [`on_evict`](ReplacementPolicy::on_evict) for training.

mod hawkeye;
mod lru;
mod rrip;
mod ship;

pub use hawkeye::{Hawkeye, HK_RRPV_MAX};
pub use lru::Lru;
pub use rrip::{Brrip, Drrip, Srrip, RRPV_LONG, RRPV_MAX};
pub use ship::Ship;

use atc_types::AccessInfo;

/// A pluggable cache replacement policy.
///
/// Implementations are constructed for a fixed geometry (`sets × ways`)
/// and must keep any per-line metadata themselves; the cache core only
/// stores tags. All way indices are `< ways` and set indices `< sets`.
pub trait ReplacementPolicy: std::fmt::Debug + Send {
    /// Short policy name used in reports ("LRU", "DRRIP", "T-SHiP", …).
    fn name(&self) -> &'static str;

    /// A block was filled into `(set, way)` by the access described in
    /// `info`.
    fn on_fill(&mut self, set: usize, way: usize, info: &AccessInfo);

    /// The resident block at `(set, way)` got a hit from `info`.
    fn on_hit(&mut self, set: usize, way: usize, info: &AccessInfo);

    /// Choose a victim way in a *full* `set` for the incoming access
    /// `info`. Implementations may mutate internal state (e.g. RRIP
    /// aging).
    fn victim(&mut self, set: usize, info: &AccessInfo) -> usize;

    /// The block at `(set, way)` has been evicted (after [`victim`] or an
    /// external invalidation). Policies use this for negative training.
    fn on_evict(&mut self, set: usize, way: usize);
}

/// Saturating counter helper used by SHiP/Hawkeye predictors and DRRIP's
/// PSEL.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SatCounter {
    value: u32,
    max: u32,
}

impl SatCounter {
    /// A counter in `0..=max` starting at `initial`.
    ///
    /// # Panics
    ///
    /// Panics if `initial > max`.
    pub fn new(initial: u32, max: u32) -> Self {
        assert!(initial <= max);
        SatCounter {
            value: initial,
            max,
        }
    }

    /// Saturating increment.
    #[inline]
    pub fn inc(&mut self) {
        if self.value < self.max {
            self.value += 1;
        }
    }

    /// Saturating decrement.
    #[inline]
    pub fn dec(&mut self) {
        self.value = self.value.saturating_sub(1);
    }

    /// Current value.
    #[inline]
    pub fn get(self) -> u32 {
        self.value
    }

    /// True if the counter is in its upper half (≥ (max+1)/2).
    #[inline]
    pub fn is_high(self) -> bool {
        self.value >= self.max.div_ceil(2)
    }
}

/// A stable 64→16-bit hash for signature tables (xorshift-multiply fold).
#[inline]
pub fn fold_hash16(x: u64) -> u16 {
    let mut h = x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h ^= h >> 29;
    h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^= h >> 32;
    (h & 0xFFFF) as u16
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sat_counter_bounds() {
        let mut c = SatCounter::new(0, 3);
        c.dec();
        assert_eq!(c.get(), 0);
        for _ in 0..10 {
            c.inc();
        }
        assert_eq!(c.get(), 3);
        assert!(c.is_high());
        c.dec();
        c.dec();
        assert_eq!(c.get(), 1);
        assert!(!c.is_high());
    }

    #[test]
    #[should_panic]
    fn sat_counter_rejects_bad_initial() {
        SatCounter::new(5, 3);
    }

    #[test]
    fn fold_hash_spreads_low_bit_changes() {
        // Not a distribution test, just non-triviality.
        assert_ne!(fold_hash16(1), fold_hash16(2));
        assert_ne!(fold_hash16(0x1000), fold_hash16(0x1001));
    }
}
