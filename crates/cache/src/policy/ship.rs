//! SHiP: Signature-based Hit Predictor (Wu et al., MICRO 2011).
//!
//! SHiP keeps SRRIP's victim-selection and promotion but predicts the
//! insertion RRPV per *signature* (here: the instruction pointer). A
//! Signature History Counter Table (SHCT) counts, per signature, whether
//! blocks inserted by it are reused before eviction: a hit increments the
//! counter; an eviction without reuse decrements it. Fills whose
//! signature has a zero counter are inserted distant (RRPV=3), the rest
//! at RRPV=2.
//!
//! The [`SignatureMode`] parameter implements the paper's
//! *translation-conscious signatures*: with
//! [`SignatureMode::PerClass`], translations, replay loads and non-replay
//! loads train disjoint SHCT entries, removing the cross-class noise the
//! paper blames for premature PTE eviction (§IV).

use atc_types::{AccessInfo, SignatureMode};

use super::rrip::{RRPV_LONG, RRPV_MAX};
use super::{fold_hash16, ReplacementPolicy, SatCounter};

/// SHCT size (16 K entries, 14-bit index).
const SHCT_ENTRIES: usize = 16 * 1024;
/// 3-bit SHCT counters.
const SHCT_MAX: u32 = 7;
/// Initial (weakly reused) counter value.
const SHCT_INIT: u32 = 1;

#[derive(Debug, Clone, Copy)]
struct LineMeta {
    rrpv: u8,
    signature: u16,
    outcome: bool, // reused since fill?
    valid: bool,
}

/// The SHiP replacement policy.
#[derive(Debug)]
pub struct Ship {
    meta: Vec<LineMeta>,
    ways: usize,
    shct: Vec<SatCounter>,
    mode: SignatureMode,
}

impl Ship {
    /// Create SHiP metadata for a `sets × ways` cache using plain IP
    /// signatures (the original proposal).
    pub fn new(sets: usize, ways: usize) -> Self {
        Self::with_mode(sets, ways, SignatureMode::IpOnly)
    }

    /// Create SHiP with an explicit signature mode;
    /// [`SignatureMode::PerClass`] gives the paper's enhanced signatures
    /// ("NewSign" in Fig 12).
    pub fn with_mode(sets: usize, ways: usize, mode: SignatureMode) -> Self {
        assert!(sets > 0 && ways > 0);
        Ship {
            meta: vec![
                LineMeta {
                    rrpv: RRPV_MAX,
                    signature: 0,
                    outcome: false,
                    valid: false
                };
                sets * ways
            ],
            ways,
            shct: vec![SatCounter::new(SHCT_INIT, SHCT_MAX); SHCT_ENTRIES],
            mode,
        }
    }

    #[inline]
    fn idx(&self, set: usize, way: usize) -> usize {
        set * self.ways + way
    }

    #[inline]
    fn shct_index(&self, info: &AccessInfo) -> u16 {
        let sig = self.mode.signature(info.ip, info.class);
        fold_hash16(sig) % SHCT_ENTRIES as u16
    }

    /// Read a block's current RRPV (diagnostics / T-SHiP).
    pub fn rrpv(&self, set: usize, way: usize) -> u8 {
        self.meta[set * self.ways + way].rrpv
    }

    /// Override a block's RRPV (used by T-SHiP's leaf-translation
    /// insertion).
    pub fn set_rrpv(&mut self, set: usize, way: usize, v: u8) {
        debug_assert!(v <= RRPV_MAX);
        let i = self.idx(set, way);
        self.meta[i].rrpv = v;
    }

    /// The signature mode in use.
    pub fn mode(&self) -> SignatureMode {
        self.mode
    }

    /// SHCT counter value for an access's signature (tests).
    pub fn shct_value(&self, info: &AccessInfo) -> u32 {
        self.shct[self.shct_index(info) as usize].get()
    }
}

impl ReplacementPolicy for Ship {
    fn name(&self) -> &'static str {
        match self.mode {
            SignatureMode::IpOnly => "SHiP",
            SignatureMode::PerClass => "SHiP+NewSign",
        }
    }

    fn on_fill(&mut self, set: usize, way: usize, info: &AccessInfo) {
        let sig_idx = self.shct_index(info);
        let predicted_dead = self.shct[sig_idx as usize].get() == 0;
        let i = self.idx(set, way);
        self.meta[i] = LineMeta {
            rrpv: if predicted_dead { RRPV_MAX } else { RRPV_LONG },
            signature: sig_idx,
            outcome: false,
            valid: true,
        };
    }

    fn on_hit(&mut self, set: usize, way: usize, _info: &AccessInfo) {
        let i = self.idx(set, way);
        let m = &mut self.meta[i];
        m.rrpv = 0;
        m.outcome = true;
        // SHiP trains the SHCT on every re-reference.
        self.shct[m.signature as usize].inc();
    }

    fn victim(&mut self, set: usize, _info: &AccessInfo) -> usize {
        // Same single-pass aging as the RRIP family: the victim is the
        // first way holding the set's oldest RRPV, and the aging the
        // retry loop would have applied lands as one uniform bump.
        let base = set * self.ways;
        let slice = &mut self.meta[base..base + self.ways];
        let mut oldest = 0u8;
        let mut victim = 0usize;
        for (w, m) in slice.iter().enumerate() {
            if m.rrpv > oldest {
                oldest = m.rrpv;
                victim = w;
            }
        }
        let deficit = RRPV_MAX - oldest;
        if deficit > 0 {
            for m in slice.iter_mut() {
                m.rrpv += deficit;
            }
        }
        victim
    }

    fn on_evict(&mut self, set: usize, way: usize) {
        let i = self.idx(set, way);
        let m = self.meta[i];
        if m.valid && !m.outcome {
            self.shct[m.signature as usize].dec();
        }
        self.meta[i].valid = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atc_types::{AccessClass, LineAddr, PtLevel};

    fn load(ip: u64) -> AccessInfo {
        AccessInfo::demand(ip, LineAddr::new(ip), AccessClass::NonReplayData)
    }

    fn translation(ip: u64) -> AccessInfo {
        AccessInfo::demand(ip, LineAddr::new(ip), AccessClass::Translation(PtLevel::L1))
    }

    #[test]
    fn dead_signature_inserts_distant() {
        let mut p = Ship::new(4, 4);
        let a = load(0x999);
        // Drive the signature's counter to zero with unused evictions.
        for _ in 0..8 {
            p.on_fill(0, 0, &a);
            p.on_evict(0, 0);
        }
        assert_eq!(p.shct_value(&a), 0);
        p.on_fill(0, 1, &a);
        assert_eq!(p.rrpv(0, 1), RRPV_MAX);
    }

    #[test]
    fn reused_signature_inserts_long() {
        let mut p = Ship::new(4, 4);
        let a = load(0x123);
        p.on_fill(0, 0, &a);
        p.on_hit(0, 0, &a);
        p.on_fill(0, 1, &a);
        assert_eq!(p.rrpv(0, 1), RRPV_LONG);
    }

    #[test]
    fn eviction_without_reuse_decrements_only_once() {
        let mut p = Ship::new(4, 4);
        let a = load(0x55);
        p.on_fill(0, 0, &a);
        let before = p.shct_value(&a);
        p.on_evict(0, 0);
        p.on_evict(0, 0); // stale double-evict must not double-train
        assert_eq!(p.shct_value(&a), before - 1);
    }

    #[test]
    fn ip_only_mode_conflates_translation_and_data() {
        let mut p = Ship::new(4, 4);
        let d = load(0x700);
        let t = translation(0x700);
        // Kill the IP's counter with dead data blocks.
        for _ in 0..8 {
            p.on_fill(0, 0, &d);
            p.on_evict(0, 0);
        }
        // The translation fill from the same IP is now predicted dead —
        // the paper's noise problem.
        p.on_fill(0, 1, &t);
        assert_eq!(p.rrpv(0, 1), RRPV_MAX);
    }

    #[test]
    fn per_class_mode_isolates_translation_training() {
        let mut p = Ship::with_mode(4, 4, SignatureMode::PerClass);
        let d = load(0x700);
        let t = translation(0x700);
        for _ in 0..8 {
            p.on_fill(0, 0, &d);
            p.on_evict(0, 0);
        }
        // Translation signature untouched: inserted long, not distant.
        p.on_fill(0, 1, &t);
        assert_eq!(p.rrpv(0, 1), RRPV_LONG);
        assert_eq!(p.name(), "SHiP+NewSign");
    }

    #[test]
    fn hit_promotes_to_zero() {
        let mut p = Ship::new(2, 2);
        let a = load(1);
        p.on_fill(1, 1, &a);
        p.on_hit(1, 1, &a);
        assert_eq!(p.rrpv(1, 1), 0);
    }

    #[test]
    fn victim_scan_terminates_and_prefers_distant() {
        let mut p = Ship::new(1, 4);
        let a = load(2);
        for w in 0..4 {
            p.on_fill(0, w, &a);
            p.on_hit(0, w, &a);
        }
        let v = p.victim(0, &a);
        assert!(v < 4);
    }
}
