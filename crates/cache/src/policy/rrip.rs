//! The RRIP family: SRRIP, BRRIP, and set-dueling DRRIP (Jaleel et al.,
//! ISCA 2010), with 2-bit re-reference prediction values (RRPV).
//!
//! * **SRRIP** inserts at RRPV=2, promotes to RRPV=0 on hit, evicts
//!   RRPV=3 (aging the whole set by +1 until one exists).
//! * **BRRIP** inserts at RRPV=3 except for 1-in-32 fills at RRPV=2
//!   (thrash protection).
//! * **DRRIP** set-duels SRRIP vs BRRIP leader sets with a 10-bit PSEL
//!   and uses the winner in follower sets.
//!
//! The exposed [`set_rrpv`](Srrip::set_rrpv) / [`Drrip::set_rrpv`]
//! methods let the paper's T-DRRIP wrapper override insertion RRPVs for
//! leaf translations (RRPV=0) and replay loads (RRPV=3) without copying
//! the machinery.

use atc_types::AccessInfo;

use super::{ReplacementPolicy, SatCounter};

/// Maximum 2-bit RRPV (distant re-reference).
pub const RRPV_MAX: u8 = 3;
/// SRRIP's "long re-reference interval" insertion value.
pub const RRPV_LONG: u8 = 2;

/// Shared RRPV array logic.
#[derive(Debug, Clone)]
struct RrpvArray {
    rrpv: Vec<u8>,
    ways: usize,
}

impl RrpvArray {
    fn new(sets: usize, ways: usize) -> Self {
        assert!(sets > 0 && ways > 0);
        RrpvArray {
            rrpv: vec![RRPV_MAX; sets * ways],
            ways,
        }
    }

    #[inline]
    fn get(&self, set: usize, way: usize) -> u8 {
        self.rrpv[set * self.ways + way]
    }

    #[inline]
    fn set(&mut self, set: usize, way: usize, v: u8) {
        debug_assert!(v <= RRPV_MAX);
        self.rrpv[set * self.ways + way] = v;
    }

    /// SRRIP victim scan: the first way to reach RRPV=3 under aging.
    /// Computed in one pass instead of the textbook age-and-retry loop:
    /// aging raises every RRPV uniformly until the set's oldest block
    /// hits the maximum, so the victim is the first way already holding
    /// the oldest value and the aging deficit is applied in one sweep.
    fn victim(&mut self, set: usize) -> usize {
        let base = set * self.ways;
        let slice = &mut self.rrpv[base..base + self.ways];
        let mut oldest = 0u8;
        let mut victim = 0usize;
        for (w, &v) in slice.iter().enumerate() {
            if v > oldest {
                oldest = v;
                victim = w;
            }
        }
        let deficit = RRPV_MAX - oldest;
        if deficit > 0 {
            for v in slice.iter_mut() {
                *v += deficit;
            }
        }
        victim
    }
}

/// Static RRIP.
#[derive(Debug)]
pub struct Srrip {
    arr: RrpvArray,
}

impl Srrip {
    /// Create SRRIP metadata for a `sets × ways` cache.
    pub fn new(sets: usize, ways: usize) -> Self {
        Srrip {
            arr: RrpvArray::new(sets, ways),
        }
    }

    /// Read a block's current RRPV (diagnostics / T-policies).
    pub fn rrpv(&self, set: usize, way: usize) -> u8 {
        self.arr.get(set, way)
    }

    /// Override a block's RRPV (used by translation-conscious wrappers).
    ///
    /// # Panics
    ///
    /// Debug-panics if `v > 3`.
    pub fn set_rrpv(&mut self, set: usize, way: usize, v: u8) {
        self.arr.set(set, way, v);
    }
}

impl ReplacementPolicy for Srrip {
    fn name(&self) -> &'static str {
        "SRRIP"
    }

    fn on_fill(&mut self, set: usize, way: usize, _info: &AccessInfo) {
        self.arr.set(set, way, RRPV_LONG);
    }

    fn on_hit(&mut self, set: usize, way: usize, _info: &AccessInfo) {
        self.arr.set(set, way, 0);
    }

    fn victim(&mut self, set: usize, _info: &AccessInfo) -> usize {
        self.arr.victim(set)
    }

    fn on_evict(&mut self, _set: usize, _way: usize) {}
}

/// Bimodal RRIP: mostly-distant insertion.
#[derive(Debug)]
pub struct Brrip {
    arr: RrpvArray,
    fill_count: u64,
}

/// One in `BRRIP_LONG_INTERVAL` BRRIP fills gets RRPV=2 instead of 3.
const BRRIP_LONG_INTERVAL: u64 = 32;

impl Brrip {
    /// Create BRRIP metadata for a `sets × ways` cache.
    pub fn new(sets: usize, ways: usize) -> Self {
        Brrip {
            arr: RrpvArray::new(sets, ways),
            fill_count: 0,
        }
    }
}

impl ReplacementPolicy for Brrip {
    fn name(&self) -> &'static str {
        "BRRIP"
    }

    fn on_fill(&mut self, set: usize, way: usize, _info: &AccessInfo) {
        self.fill_count += 1;
        let v = if self.fill_count.is_multiple_of(BRRIP_LONG_INTERVAL) {
            RRPV_LONG
        } else {
            RRPV_MAX
        };
        self.arr.set(set, way, v);
    }

    fn on_hit(&mut self, set: usize, way: usize, _info: &AccessInfo) {
        self.arr.set(set, way, 0);
    }

    fn victim(&mut self, set: usize, _info: &AccessInfo) -> usize {
        self.arr.victim(set)
    }

    fn on_evict(&mut self, _set: usize, _way: usize) {}
}

/// Which insertion flavour a set uses under DRRIP.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SetRole {
    SrripLeader,
    BrripLeader,
    Follower,
}

/// Dynamic RRIP with set dueling.
#[derive(Debug)]
pub struct Drrip {
    arr: RrpvArray,
    roles: Vec<SetRole>,
    psel: SatCounter,
    fill_count: u64,
}

/// PSEL is a 10-bit counter; ≥512 means "BRRIP is winning".
const PSEL_MAX: u32 = 1023;
/// Number of leader sets per policy.
const LEADERS: usize = 32;

impl Drrip {
    /// Create DRRIP metadata for a `sets × ways` cache; 32 leader sets
    /// per flavour are spread evenly over the index space.
    pub fn new(sets: usize, ways: usize) -> Self {
        let stride = (sets / (2 * LEADERS)).max(1);
        let mut roles = vec![SetRole::Follower; sets];
        for (i, role) in roles.iter_mut().enumerate() {
            if i.is_multiple_of(stride) {
                let leader_idx = i / stride;
                if leader_idx.is_multiple_of(2) && leader_idx / 2 < LEADERS {
                    *role = SetRole::SrripLeader;
                } else if !leader_idx.is_multiple_of(2) && leader_idx / 2 < LEADERS {
                    *role = SetRole::BrripLeader;
                }
            }
        }
        Drrip {
            arr: RrpvArray::new(sets, ways),
            roles,
            psel: SatCounter::new(PSEL_MAX / 2, PSEL_MAX),
            fill_count: 0,
        }
    }

    fn brrip_insertion(&mut self) -> u8 {
        self.fill_count += 1;
        if self.fill_count.is_multiple_of(BRRIP_LONG_INTERVAL) {
            RRPV_LONG
        } else {
            RRPV_MAX
        }
    }

    /// Read a block's current RRPV.
    pub fn rrpv(&self, set: usize, way: usize) -> u8 {
        self.arr.get(set, way)
    }

    /// Override a block's RRPV (used by T-DRRIP).
    pub fn set_rrpv(&mut self, set: usize, way: usize, v: u8) {
        self.arr.set(set, way, v);
    }

    /// Current PSEL value (tests/diagnostics).
    pub fn psel(&self) -> u32 {
        self.psel.get()
    }
}

impl ReplacementPolicy for Drrip {
    fn name(&self) -> &'static str {
        "DRRIP"
    }

    fn on_fill(&mut self, set: usize, way: usize, _info: &AccessInfo) {
        // A fill implies this set missed: leader sets vote. A miss in an
        // SRRIP leader nudges PSEL towards BRRIP and vice versa.
        let v = match self.roles[set] {
            SetRole::SrripLeader => {
                self.psel.inc();
                RRPV_LONG
            }
            SetRole::BrripLeader => {
                self.psel.dec();
                self.brrip_insertion()
            }
            SetRole::Follower => {
                if self.psel.is_high() {
                    // SRRIP leaders miss more → use BRRIP.
                    self.brrip_insertion()
                } else {
                    RRPV_LONG
                }
            }
        };
        self.arr.set(set, way, v);
    }

    fn on_hit(&mut self, set: usize, way: usize, _info: &AccessInfo) {
        self.arr.set(set, way, 0);
    }

    fn victim(&mut self, set: usize, _info: &AccessInfo) -> usize {
        self.arr.victim(set)
    }

    fn on_evict(&mut self, _set: usize, _way: usize) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use atc_types::{AccessClass, AccessInfo, LineAddr};

    fn info() -> AccessInfo {
        AccessInfo::demand(0, LineAddr::new(0), AccessClass::NonReplayData)
    }

    #[test]
    fn srrip_inserts_long_and_promotes_to_zero() {
        let mut p = Srrip::new(4, 4);
        p.on_fill(0, 1, &info());
        assert_eq!(p.rrpv(0, 1), RRPV_LONG);
        p.on_hit(0, 1, &info());
        assert_eq!(p.rrpv(0, 1), 0);
    }

    #[test]
    fn srrip_victim_prefers_distant() {
        let mut p = Srrip::new(1, 4);
        for w in 0..4 {
            p.on_fill(0, w, &info()); // all RRPV=2
        }
        p.on_hit(0, 0, &info()); // way 0 → 0
        p.set_rrpv(0, 3, RRPV_MAX);
        assert_eq!(p.victim(0, &info()), 3);
    }

    #[test]
    fn srrip_ages_set_when_no_distant_block() {
        let mut p = Srrip::new(1, 2);
        p.on_fill(0, 0, &info());
        p.on_fill(0, 1, &info());
        p.on_hit(0, 0, &info());
        p.on_hit(0, 1, &info()); // both RRPV=0
        let v = p.victim(0, &info());
        // Aging raised both to 3; the first found wins.
        assert_eq!(v, 0);
        assert_eq!(p.rrpv(0, 0), RRPV_MAX);
        assert_eq!(p.rrpv(0, 1), RRPV_MAX);
    }

    #[test]
    fn brrip_inserts_mostly_distant() {
        let mut p = Brrip::new(1, 4);
        let mut distant = 0;
        for i in 0..64 {
            p.on_fill(0, i % 4, &info());
            if p.arr.get(0, i % 4) == RRPV_MAX {
                distant += 1;
            }
        }
        assert_eq!(distant, 62); // 2 of 64 inserted long
    }

    #[test]
    fn drrip_roles_cover_both_leader_kinds() {
        let p = Drrip::new(1024, 8);
        let srrip = p
            .roles
            .iter()
            .filter(|r| **r == SetRole::SrripLeader)
            .count();
        let brrip = p
            .roles
            .iter()
            .filter(|r| **r == SetRole::BrripLeader)
            .count();
        assert_eq!(srrip, LEADERS);
        assert_eq!(brrip, LEADERS);
    }

    /// First set with the given dueling role. The constructor always
    /// assigns [`LEADERS`] sets of each leader kind, so a missing role
    /// means the role-assignment hash broke — fail with a message naming
    /// the role instead of a bare `unwrap` on `position()`.
    fn set_with_role(p: &Drrip, role: SetRole) -> usize {
        p.roles.iter().position(|r| *r == role).unwrap_or_else(|| {
            unreachable!(
                "no set with role {role:?} among {} sets; set dueling is misconfigured",
                p.roles.len()
            )
        })
    }

    #[test]
    fn drrip_psel_moves_with_leader_misses() {
        let mut p = Drrip::new(1024, 8);
        let start = p.psel();
        // Find an SRRIP leader set and miss in it repeatedly.
        let leader = set_with_role(&p, SetRole::SrripLeader);
        for _ in 0..10 {
            p.on_fill(leader, 0, &info());
        }
        assert!(p.psel() > start);
        let bleader = set_with_role(&p, SetRole::BrripLeader);
        for _ in 0..20 {
            p.on_fill(bleader, 0, &info());
        }
        assert!(p.psel() < start);
    }

    #[test]
    fn drrip_followers_follow_psel() {
        let mut p = Drrip::new(1024, 8);
        let follower = set_with_role(&p, SetRole::Follower);
        // Bias PSEL low (SRRIP wins).
        let bl = set_with_role(&p, SetRole::BrripLeader);
        for _ in 0..600 {
            p.on_fill(bl, 0, &info());
        }
        p.on_fill(follower, 3, &info());
        assert_eq!(p.rrpv(follower, 3), RRPV_LONG);
    }

    #[test]
    fn rrpv_never_exceeds_max() {
        // Property-style check over a random-ish event mix.
        let mut p = Srrip::new(2, 4);
        for i in 0..200usize {
            let set = i % 2;
            let way = (i * 7) % 4;
            match i % 3 {
                0 => p.on_fill(set, way, &info()),
                1 => p.on_hit(set, way, &info()),
                _ => {
                    let v = p.victim(set, &info());
                    assert!(v < 4);
                }
            }
            for w in 0..4 {
                assert!(p.rrpv(set, w) <= RRPV_MAX);
            }
        }
    }
}
