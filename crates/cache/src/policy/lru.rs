//! True least-recently-used replacement.

use atc_types::AccessInfo;

use super::ReplacementPolicy;

/// True LRU: the victim is the way whose last touch is oldest.
#[derive(Debug)]
pub struct Lru {
    stamps: Vec<u64>, // sets × ways
    ways: usize,
    clock: u64,
}

impl Lru {
    /// Create LRU metadata for a `sets × ways` cache.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `ways` is zero.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(sets > 0 && ways > 0);
        Lru {
            stamps: vec![0; sets * ways],
            ways,
            clock: 0,
        }
    }

    #[inline]
    fn idx(&self, set: usize, way: usize) -> usize {
        set * self.ways + way
    }

    fn touch(&mut self, set: usize, way: usize) {
        self.clock += 1;
        let i = self.idx(set, way);
        self.stamps[i] = self.clock;
    }
}

impl ReplacementPolicy for Lru {
    fn name(&self) -> &'static str {
        "LRU"
    }

    fn on_fill(&mut self, set: usize, way: usize, _info: &AccessInfo) {
        self.touch(set, way);
    }

    fn on_hit(&mut self, set: usize, way: usize, _info: &AccessInfo) {
        self.touch(set, way);
    }

    fn victim(&mut self, set: usize, _info: &AccessInfo) -> usize {
        let base = set * self.ways;
        (0..self.ways)
            .min_by_key(|&w| self.stamps[base + w])
            .expect("ways > 0")
    }

    fn on_evict(&mut self, _set: usize, _way: usize) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use atc_types::{AccessClass, AccessInfo, LineAddr};

    fn info() -> AccessInfo {
        AccessInfo::demand(0, LineAddr::new(0), AccessClass::NonReplayData)
    }

    #[test]
    fn victim_is_least_recently_touched() {
        let mut p = Lru::new(2, 4);
        for w in 0..4 {
            p.on_fill(0, w, &info());
        }
        p.on_hit(0, 0, &info());
        p.on_hit(0, 2, &info());
        // Way 1 is now the oldest.
        assert_eq!(p.victim(0, &info()), 1);
    }

    #[test]
    fn sets_are_independent() {
        let mut p = Lru::new(2, 2);
        p.on_fill(0, 0, &info());
        p.on_fill(0, 1, &info());
        p.on_fill(1, 1, &info());
        p.on_fill(1, 0, &info());
        assert_eq!(p.victim(0, &info()), 0);
        assert_eq!(p.victim(1, &info()), 1);
    }

    #[test]
    fn lru_stack_property_under_hits() {
        // Touching ways in order 0..n makes way 0 the victim; then
        // touching way 0 makes way 1 the victim.
        let mut p = Lru::new(1, 8);
        for w in 0..8 {
            p.on_fill(0, w, &info());
        }
        assert_eq!(p.victim(0, &info()), 0);
        p.on_hit(0, 0, &info());
        assert_eq!(p.victim(0, &info()), 1);
    }
}
