//! Hawkeye (Jain & Lin, ISCA 2016): replacement trained against Belady's
//! OPT over a sampled history.
//!
//! * **OPTgen** replays the access stream of sampled sets with an
//!   occupancy vector to decide whether OPT would have hit each reuse;
//! * the **Hawkeye predictor** (3-bit counters indexed by signature)
//!   learns which signatures load cache-friendly blocks;
//! * blocks predicted friendly insert at RRPV=0, averse at RRPV=7
//!   (3-bit RRPV), and friendly insertions age the rest of the set.
//!
//! As with SHiP, the [`SignatureMode`] parameter selects between the
//! original IP signature and the paper's per-class translation-conscious
//! signature (T-Hawkeye).

use std::collections::HashMap;

use atc_types::{AccessInfo, LineAddr, SignatureMode};

use super::{fold_hash16, ReplacementPolicy, SatCounter};

/// 3-bit RRPV maximum (cache-averse).
pub const HK_RRPV_MAX: u8 = 7;
/// Friendly blocks age up to 6, never becoming averse by aging alone.
const HK_AGE_LIMIT: u8 = 6;
/// Predictor entries (13-bit index).
const PREDICTOR_ENTRIES: usize = 8 * 1024;
/// 3-bit predictor counters.
const PREDICTOR_MAX: u32 = 7;
/// Sample every 16th set.
const SAMPLE_STRIDE: usize = 16;

#[derive(Debug, Clone, Copy)]
struct LineMeta {
    rrpv: u8,
    signature: u16,
    friendly: bool,
    outcome: bool,
    valid: bool,
}

/// OPTgen state for one sampled set.
#[derive(Debug)]
struct Sampler {
    /// Usage history window in set-local time quanta (8 × ways).
    window: u64,
    capacity: u32,
    time: u64,
    /// line → (last access time, signature index of last accessor).
    last: HashMap<LineAddr, (u64, u16)>,
    /// Circular occupancy vector indexed by `time % window`.
    occupancy: Vec<u32>,
}

/// Outcome of an OPTgen query for one reuse.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
enum OptDecision {
    Hit(u16),  // OPT hits; train this signature up
    Miss(u16), // OPT misses; train this signature down
    Cold,      // first touch: no training
}

impl Sampler {
    fn new(ways: usize) -> Self {
        let window = (8 * ways) as u64;
        Sampler {
            window,
            capacity: ways as u32,
            time: 0,
            last: HashMap::new(),
            occupancy: vec![0; window as usize],
        }
    }

    /// Record an access and return OPT's verdict for the reuse it closes.
    fn access(&mut self, line: LineAddr, sig: u16) -> OptDecision {
        let t = self.time;
        self.time += 1;
        // Open the new time slot.
        self.occupancy[(t % self.window) as usize] = 0;
        let decision = match self.last.get(&line) {
            Some(&(t_prev, sig_prev)) if t - t_prev < self.window && t > t_prev => {
                let fits =
                    (t_prev..t).all(|i| self.occupancy[(i % self.window) as usize] < self.capacity);
                if fits {
                    for i in t_prev..t {
                        self.occupancy[(i % self.window) as usize] += 1;
                    }
                    OptDecision::Hit(sig_prev)
                } else {
                    OptDecision::Miss(sig_prev)
                }
            }
            Some(&(_, sig_prev)) => OptDecision::Miss(sig_prev), // beyond window
            None => OptDecision::Cold,
        };
        self.last.insert(line, (t, sig));
        // Bound the map: drop entries outside the history window.
        if self.last.len() > 4 * self.window as usize {
            let horizon = t.saturating_sub(self.window);
            self.last.retain(|_, &mut (lt, _)| lt >= horizon);
        }
        decision
    }
}

/// The Hawkeye replacement policy.
#[derive(Debug)]
pub struct Hawkeye {
    meta: Vec<LineMeta>,
    ways: usize,
    predictor: Vec<SatCounter>,
    samplers: HashMap<usize, Sampler>,
    mode: SignatureMode,
}

impl Hawkeye {
    /// Create Hawkeye metadata for a `sets × ways` cache with plain IP
    /// signatures.
    pub fn new(sets: usize, ways: usize) -> Self {
        Self::with_mode(sets, ways, SignatureMode::IpOnly)
    }

    /// Create Hawkeye with an explicit signature mode (PerClass =
    /// T-Hawkeye's signatures).
    pub fn with_mode(sets: usize, ways: usize, mode: SignatureMode) -> Self {
        assert!(sets > 0 && ways > 0);
        let samplers = (0..sets)
            .step_by(SAMPLE_STRIDE)
            .map(|s| (s, Sampler::new(ways)))
            .collect();
        Hawkeye {
            meta: vec![
                LineMeta {
                    rrpv: HK_RRPV_MAX,
                    signature: 0,
                    friendly: false,
                    outcome: false,
                    valid: false
                };
                sets * ways
            ],
            ways,
            predictor: vec![SatCounter::new(4, PREDICTOR_MAX); PREDICTOR_ENTRIES],
            samplers,
            mode,
        }
    }

    #[inline]
    fn idx(&self, set: usize, way: usize) -> usize {
        set * self.ways + way
    }

    #[inline]
    fn sig_index(&self, info: &AccessInfo) -> u16 {
        let sig = self.mode.signature(info.ip, info.class);
        fold_hash16(sig) % PREDICTOR_ENTRIES as u16
    }

    fn train(&mut self, decision: OptDecision) {
        match decision {
            OptDecision::Hit(sig) => self.predictor[sig as usize].inc(),
            OptDecision::Miss(sig) => self.predictor[sig as usize].dec(),
            OptDecision::Cold => {}
        }
    }

    fn sample(&mut self, set: usize, info: &AccessInfo) {
        let sig = self.sig_index(info);
        if let Some(sampler) = self.samplers.get_mut(&set) {
            let d = sampler.access(info.line, sig);
            self.train(d);
        }
    }

    /// Read a block's current RRPV (diagnostics / T-Hawkeye).
    pub fn rrpv(&self, set: usize, way: usize) -> u8 {
        self.meta[set * self.ways + way].rrpv
    }

    /// Override a block's RRPV (used by T-Hawkeye's leaf-translation
    /// insertion).
    pub fn set_rrpv(&mut self, set: usize, way: usize, v: u8) {
        debug_assert!(v <= HK_RRPV_MAX);
        let i = self.idx(set, way);
        self.meta[i].rrpv = v;
    }

    /// The signature mode in use.
    pub fn mode(&self) -> SignatureMode {
        self.mode
    }

    /// Predictor counter for an access's signature (tests).
    pub fn predictor_value(&self, info: &AccessInfo) -> u32 {
        self.predictor[self.sig_index(info) as usize].get()
    }

    /// Whether the predictor currently classifies this signature
    /// cache-friendly.
    pub fn predicts_friendly(&self, info: &AccessInfo) -> bool {
        self.predictor[self.sig_index(info) as usize].is_high()
    }
}

impl ReplacementPolicy for Hawkeye {
    fn name(&self) -> &'static str {
        match self.mode {
            SignatureMode::IpOnly => "Hawkeye",
            SignatureMode::PerClass => "Hawkeye+NewSign",
        }
    }

    fn on_fill(&mut self, set: usize, way: usize, info: &AccessInfo) {
        self.sample(set, info);
        let sig = self.sig_index(info);
        let friendly = self.predictor[sig as usize].is_high();
        if friendly {
            // Age the rest of the set so older friendly blocks drift
            // towards eviction relative to fresh ones.
            let base = set * self.ways;
            for w in 0..self.ways {
                if w != way {
                    let m = &mut self.meta[base + w];
                    if m.valid && m.rrpv < HK_AGE_LIMIT {
                        m.rrpv += 1;
                    }
                }
            }
        }
        let i = self.idx(set, way);
        self.meta[i] = LineMeta {
            rrpv: if friendly { 0 } else { HK_RRPV_MAX },
            signature: sig,
            friendly,
            outcome: false,
            valid: true,
        };
    }

    fn on_hit(&mut self, set: usize, way: usize, info: &AccessInfo) {
        self.sample(set, info);
        let friendly_now = self.predicts_friendly(info);
        let i = self.idx(set, way);
        let m = &mut self.meta[i];
        m.outcome = true;
        if friendly_now {
            m.rrpv = 0;
        }
    }

    fn victim(&mut self, set: usize, _info: &AccessInfo) -> usize {
        let base = set * self.ways;
        // Prefer an averse block (RRPV=7); otherwise the oldest
        // (highest-RRPV) block.
        if let Some(w) = (0..self.ways).find(|&w| self.meta[base + w].rrpv == HK_RRPV_MAX) {
            return w;
        }
        (0..self.ways)
            .max_by_key(|&w| self.meta[base + w].rrpv)
            .expect("ways > 0")
    }

    fn on_evict(&mut self, set: usize, way: usize) {
        let i = self.idx(set, way);
        let m = self.meta[i];
        if m.valid && m.friendly && !m.outcome {
            // A predicted-friendly block died without reuse: detrain.
            self.predictor[m.signature as usize].dec();
        }
        self.meta[i].valid = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atc_types::{AccessClass, PtLevel};

    fn load(ip: u64, line: u64) -> AccessInfo {
        AccessInfo::demand(ip, LineAddr::new(line), AccessClass::NonReplayData)
    }

    fn translation(ip: u64, line: u64) -> AccessInfo {
        AccessInfo::demand(
            ip,
            LineAddr::new(line),
            AccessClass::Translation(PtLevel::L1),
        )
    }

    #[test]
    fn optgen_hits_within_capacity() {
        let mut s = Sampler::new(4);
        // A, B, A: reuse of A with one intervening unique line fits.
        assert_eq!(s.access(LineAddr::new(1), 10), OptDecision::Cold);
        assert_eq!(s.access(LineAddr::new(2), 11), OptDecision::Cold);
        assert_eq!(s.access(LineAddr::new(1), 10), OptDecision::Hit(10));
    }

    #[test]
    fn optgen_misses_when_interval_saturated() {
        let mut s = Sampler::new(1); // capacity 1
        s.access(LineAddr::new(1), 10);
        s.access(LineAddr::new(2), 11);
        s.access(LineAddr::new(2), 11); // occupies the interval
                                        // A's reuse interval now saturated at time of B's liveness.
        let d = s.access(LineAddr::new(1), 10);
        assert_eq!(d, OptDecision::Miss(10));
    }

    #[test]
    fn optgen_beyond_window_is_miss() {
        let mut s = Sampler::new(1); // window = 8
        s.access(LineAddr::new(1), 10);
        for i in 0..10 {
            s.access(LineAddr::new(100 + i), 11);
        }
        assert_eq!(s.access(LineAddr::new(1), 10), OptDecision::Miss(10));
    }

    #[test]
    fn friendly_fill_inserts_zero_averse_inserts_max() {
        let mut p = Hawkeye::new(SAMPLE_STRIDE * 2, 4);
        let a = load(1, 100);
        // Fresh predictor is weakly friendly (4/7).
        p.on_fill(1, 0, &a);
        assert_eq!(p.rrpv(1, 0), 0);
        // Detrain the signature to averse.
        for _ in 0..5 {
            p.on_fill(1, 1, &a);
            p.on_evict(1, 1);
        }
        assert!(!p.predicts_friendly(&a));
        p.on_fill(1, 2, &a);
        assert_eq!(p.rrpv(1, 2), HK_RRPV_MAX);
    }

    #[test]
    fn friendly_fill_ages_other_blocks() {
        let mut p = Hawkeye::new(SAMPLE_STRIDE * 2, 4);
        let a = load(1, 100);
        let b = load(2, 200);
        p.on_fill(1, 0, &a);
        assert_eq!(p.rrpv(1, 0), 0);
        p.on_fill(1, 1, &b);
        assert_eq!(p.rrpv(1, 0), 1, "older block aged by friendly fill");
    }

    #[test]
    fn victim_prefers_averse_block() {
        let mut p = Hawkeye::new(SAMPLE_STRIDE * 2, 4);
        let a = load(1, 100);
        for w in 0..4 {
            p.on_fill(1, w, &a);
        }
        p.set_rrpv(1, 2, HK_RRPV_MAX);
        assert_eq!(p.victim(1, &a), 2);
    }

    #[test]
    fn sampled_set_trains_predictor_via_optgen() {
        let mut p = Hawkeye::new(SAMPLE_STRIDE * 2, 4);
        let ip = 77;
        let start = p.predictor_value(&load(ip, 0));
        // In sampled set 0: drive A,B,A,B,… reuse that OPT would hit.
        for i in 0..20u64 {
            let line = 1000 + (i % 2);
            p.on_fill(0, (i % 4) as usize, &load(ip, line));
        }
        assert!(p.predictor_value(&load(ip, 0)) >= start);
    }

    #[test]
    fn per_class_mode_separates_translation_predictor_state() {
        let mut p = Hawkeye::with_mode(SAMPLE_STRIDE * 2, 4, SignatureMode::PerClass);
        let d = load(9, 1);
        let t = translation(9, 2);
        // Detrain the data signature.
        for _ in 0..6 {
            p.on_fill(1, 0, &d);
            p.on_evict(1, 0);
        }
        assert!(!p.predicts_friendly(&d));
        assert!(
            p.predicts_friendly(&t),
            "translation signature must be unaffected"
        );
    }

    #[test]
    fn averse_hit_does_not_reset_rrpv() {
        let mut p = Hawkeye::new(SAMPLE_STRIDE * 2, 4);
        let a = load(5, 50);
        for _ in 0..6 {
            p.on_fill(1, 1, &a);
            p.on_evict(1, 1);
        }
        assert!(!p.predicts_friendly(&a));
        p.on_fill(1, 0, &a);
        assert_eq!(p.rrpv(1, 0), HK_RRPV_MAX);
        p.on_hit(1, 0, &a);
        assert_eq!(p.rrpv(1, 0), HK_RRPV_MAX);
    }
}
