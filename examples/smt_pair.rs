//! Running a 2-way SMT pair (Fig 17 in miniature): two threads share one
//! core's TLBs, caches and DRAM; the enhancements are evaluated with
//! harmonic speedup.
//!
//! ```text
//! cargo run --release --example smt_pair
//! ```

use atc_core::Enhancement;
use atc_sim::{run_smt, SimConfig};
use atc_stats::harmonic_speedup;
use atc_workloads::{BenchmarkId, Scale};

fn main() {
    let (a, b) = (BenchmarkId::Pr, BenchmarkId::Cc);
    let (warmup, measure) = (50_000, 250_000);

    let run = |cfg: &SimConfig| {
        let mut w0 = a.build(Scale::Small, 1);
        let mut w1 = b.build(Scale::Small, 2);
        run_smt(cfg, w0.as_mut(), w1.as_mut(), warmup, measure).expect("pair runs to completion")
    };

    let base = run(&SimConfig::baseline());
    let enh = run(&SimConfig::with_enhancement(Enhancement::Tempo));

    println!("SMT pair: {} + {}", a.name(), b.name());
    for (i, name) in [a.name(), b.name()].iter().enumerate() {
        println!(
            "thread {i} ({name:>3}): baseline IPC {:.3} -> enhanced IPC {:.3}",
            base.threads[i].ipc(),
            enh.threads[i].ipc()
        );
    }
    let speedups: Vec<f64> = (0..2)
        .map(|i| base.threads[i].cycles as f64 / enh.threads[i].cycles as f64)
        .collect();
    println!(
        "harmonic speedup of the enhancements: {:.3}",
        harmonic_speedup(&speedups)
    );
}
