//! Telemetry study: run one workload with the telemetry layer attached
//! and print the paper-style observability tables — head-of-ROB stall
//! attribution (Fig 1), PTE-eviction sources at L2C/LLC (§III), and
//! walk / replay latency percentiles — then cross-check every telemetry
//! counter against the simulator's own `RunStats` and optionally write
//! the `atc-telemetry-v1` JSON document.
//!
//! ```text
//! cargo run --release --example telemetry_study -- \
//!     [--scale test|small] [--warmup N] [--measure N] [--json PATH]
//! ```
//!
//! Exits nonzero if any telemetry counter disagrees with `RunStats`,
//! or if the streaming delta epochs (prefix runs of the same workload
//! fed through `SnapshotStream`) fail to sum back to the final
//! cumulative snapshot: both sides are accumulated independently, so
//! agreement is a real end-to-end check, not a tautology.

use std::collections::HashMap;
use std::process::ExitCode;

use atc_bench::telemetry::telemetry_to_json;
use atc_obs::{Registry, SnapshotStream, TelemetrySnapshot};
use atc_sim::{run_one, SimConfig, TelemetryConfig};
use atc_stats::table::Table;
use atc_workloads::{BenchmarkId, Scale};

fn pct(num: u64, den: u64) -> String {
    if den == 0 {
        return "n/a".to_string();
    }
    format!("{:.1}%", num as f64 * 100.0 / den as f64)
}

fn main() -> ExitCode {
    let mut scale = Scale::Test;
    let mut warmup: u64 = 20_000;
    let mut measure: u64 = 120_000;
    let mut json_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut val = || args.next().unwrap_or_else(|| panic!("{arg} needs a value"));
        match arg.as_str() {
            "--scale" => {
                scale = match val().as_str() {
                    "test" => Scale::Test,
                    "small" => Scale::Small,
                    other => panic!("unknown scale {other:?} (use test|small)"),
                }
            }
            "--warmup" => warmup = val().parse().expect("--warmup takes a number"),
            "--measure" => measure = val().parse().expect("--measure takes a number"),
            "--json" => json_path = Some(val()),
            other => panic!("unknown flag {other:?}"),
        }
    }

    // Small STLB so the Test-scale footprint still walks; telemetry
    // attached with dense span sampling for a short run.
    let bench = BenchmarkId::Canneal;
    let mut cfg = SimConfig::baseline();
    cfg.machine.stlb.entries = 256;
    cfg.probes.telemetry = Some(TelemetryConfig {
        span_sample_every: 32,
        span_capacity: 256,
    });

    println!("running {bench:?} for {measure} instructions with telemetry attached...\n");
    let s = match run_one(&cfg, bench, scale, 42, warmup, measure) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("telemetry_study: run failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let t = s.telemetry.as_ref().expect("telemetry was attached");
    let c = |name: &str| {
        t.counter(name)
            .unwrap_or_else(|| panic!("counter {name} missing"))
    };

    // --- Stall attribution (the Fig 1 story) ---
    let stalls = [
        ("translation (STLB walk)", c("stall.translation_cycles")),
        ("replay data", c("stall.replay_cycles")),
        ("regular data", c("stall.regular_cycles")),
        ("other", c("stall.other_cycles")),
    ];
    let total: u64 = stalls.iter().map(|&(_, v)| v).sum();
    let mut table = Table::new(&["stall cause", "cycles", "share"]);
    for (cause, cycles) in stalls {
        table.row(&[cause.to_string(), cycles.to_string(), pct(cycles, total)]);
    }
    println!(
        "head-of-ROB stall attribution ({} core cycles):",
        c("core.cycles")
    );
    println!("{}", table.render());

    // --- PTE evictions and who caused them (§III) ---
    let mut table = Table::new(&[
        "level",
        "PTE evictions",
        "dead",
        "by transl",
        "by replay",
        "by regular",
        "by prefetch",
    ]);
    for lvl in ["l2c", "llc"] {
        let total = c(&format!("{lvl}.pte_evict.total"));
        table.row(&[
            lvl.to_uppercase(),
            total.to_string(),
            pct(c(&format!("{lvl}.pte_evict.dead")), total),
            pct(c(&format!("{lvl}.pte_evicted_by.translation")), total),
            pct(c(&format!("{lvl}.pte_evicted_by.replay")), total),
            pct(c(&format!("{lvl}.pte_evicted_by.regular")), total),
            pct(c(&format!("{lvl}.pte_evicted_by.prefetch")), total),
        ]);
    }
    println!("PTE (translation-block) evictions:");
    println!("{}", table.render());

    // --- Latency distributions ---
    let mut table = Table::new(&["distribution", "count", "mean", "p50", "p95", "p99", "max"]);
    for name in ["walk.latency_cycles", "replay.latency_cycles"] {
        let h = t.histogram(name).expect("latency histogram present");
        table.row(&[
            name.to_string(),
            h.count().to_string(),
            format!("{:.1}", h.mean()),
            h.p50().to_string(),
            h.p95().to_string(),
            h.p99().to_string(),
            h.max().to_string(),
        ]);
    }
    println!("latency distributions (cycles):");
    println!("{}", table.render());
    println!(
        "span samples: {} walk, {} replay (1 in {}, {} dropped)\n",
        t.walk_spans.len(),
        t.replay_spans.len(),
        t.span_sample_every,
        t.spans_dropped
    );

    // --- Reconciliation: telemetry vs RunStats, exact ---
    let mut errors: Vec<String> = Vec::new();
    let mut checked = 0u32;
    let mut check = |what: &str, got: u64, want: u64| {
        checked += 1;
        if got != want {
            errors.push(format!("{what}: telemetry {got} != RunStats {want}"));
        }
    };
    check(
        "core.instructions",
        c("core.instructions"),
        s.core.instructions,
    );
    check("core.cycles", c("core.cycles"), s.core.cycles);
    check("walk.count", c("walk.count"), s.walks);
    for (i, lvl) in ["l1d", "l2c", "llc", "dram"].iter().enumerate() {
        check(
            &format!("walk.leaf_served.{lvl}"),
            c(&format!("walk.leaf_served.{lvl}")),
            s.service_translation[i],
        );
        check(
            &format!("replay.served.{lvl}"),
            c(&format!("replay.served.{lvl}")),
            s.service_replay[i],
        );
    }
    check(
        "replay.count",
        c("replay.count"),
        s.service_replay.iter().sum::<u64>(),
    );
    check(
        "stall.translation_cycles",
        c("stall.translation_cycles"),
        s.core.stalls.stlb_walk,
    );
    check(
        "stall.replay_cycles",
        c("stall.replay_cycles"),
        s.core.stalls.replay_data,
    );
    check(
        "stall.regular_cycles",
        c("stall.regular_cycles"),
        s.core.stalls.non_replay_data,
    );
    check("tlb.stlb.misses", c("tlb.stlb.misses"), s.stlb.misses);
    check("dram.requests", c("dram.requests"), s.dram.requests);
    check(
        "l2c.pte_evict.dead",
        c("l2c.pte_evict.dead"),
        s.l2c_pte_evictions.0,
    );
    check(
        "l2c.pte_evict.total",
        c("l2c.pte_evict.total"),
        s.l2c_pte_evictions.1,
    );
    check(
        "llc.pte_evict.dead",
        c("llc.pte_evict.dead"),
        s.llc_pte_evictions.0,
    );
    check(
        "llc.pte_evict.total",
        c("llc.pte_evict.total"),
        s.llc_pte_evictions.1,
    );
    for (lvl, cc) in [("l1d", &s.l1d), ("l2c", &s.l2c), ("llc", &s.llc)] {
        let misses = c(&format!("{lvl}.misses.translation"))
            + c(&format!("{lvl}.misses.replay"))
            + c(&format!("{lvl}.misses.regular"));
        check(&format!("{lvl} demand misses"), misses, cc.total_misses());
    }
    let wh = t.histogram("walk.latency_cycles").expect("walk histogram");
    check("walk latency samples", wh.count(), s.walks);

    if !errors.is_empty() {
        eprintln!("telemetry does NOT reconcile with RunStats:");
        for e in &errors {
            eprintln!("  {e}");
        }
        return ExitCode::FAILURE;
    }
    println!("telemetry reconciles exactly with RunStats ({checked} counters checked).");

    // --- Streaming deltas: replay the run as four cumulative epochs ---
    // Prefix runs (¼, ½, ¾ of the budget, same seed) give real
    // intermediate snapshots; the full run above is the last epoch.
    // Fed through `SnapshotStream`, the per-counter delta sums must
    // telescope back to the final cumulative snapshot exactly, or the
    // delta encoder lost or invented events.
    let registry_of = |snap: &TelemetrySnapshot| {
        let mut reg = Registry::new();
        for &(name, v) in &snap.counters {
            let id = reg.counter(name);
            reg.set(id, v);
        }
        reg
    };
    let mut stream = SnapshotStream::new();
    let mut sums: HashMap<&'static str, i64> = HashMap::new();
    for k in 1..4u64 {
        let prefix = (measure * k / 4).max(1);
        let snap = match run_one(&cfg, bench, scale, 42, warmup, prefix) {
            Ok(ps) => ps.telemetry.expect("telemetry was attached"),
            Err(e) => {
                eprintln!("telemetry_study: prefix run ({prefix} instructions) failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        for (name, d) in stream.next_delta(&registry_of(&snap)).counters {
            *sums.entry(name).or_default() += d;
        }
    }
    for (name, d) in stream.next_delta(&registry_of(t)).counters {
        *sums.entry(name).or_default() += d;
    }
    println!(
        "telemetry stream: {} epoch(s) over {measure} instructions",
        stream.epochs()
    );
    let mut stream_errors: Vec<String> = Vec::new();
    for &(name, v) in &t.counters {
        let sum = sums.remove(name).unwrap_or(0);
        if sum != v as i64 {
            stream_errors.push(format!("{name}: delta sum {sum} != final {v}"));
        }
    }
    for (name, sum) in sums {
        if sum != 0 {
            stream_errors.push(format!(
                "{name}: deltas sum to {sum} but the counter is absent from the final snapshot"
            ));
        }
    }
    if !stream_errors.is_empty() {
        eprintln!("stream deltas do NOT sum back to the final snapshot:");
        for e in &stream_errors {
            eprintln!("  {e}");
        }
        return ExitCode::FAILURE;
    }
    println!(
        "stream deltas sum back to the final snapshot ({} counters).",
        t.counters.len()
    );

    if let Some(path) = json_path {
        let doc = telemetry_to_json(t);
        if let Err(e) = std::fs::write(&path, doc.render()) {
            eprintln!("telemetry_study: could not write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }
    ExitCode::SUCCESS
}
