//! Plugging a custom replacement policy into the cache model.
//!
//! Implements random replacement (a classic low-cost policy) against the
//! public [`ReplacementPolicy`] trait, drives it and true LRU with the
//! same synthetic access stream, and compares hit rates — demonstrating
//! the extension point the T-policies themselves use.
//!
//! ```text
//! cargo run --release --example custom_policy
//! ```

use atc_cache::policy::{Lru, ReplacementPolicy};
use atc_cache::Cache;
use atc_types::{AccessClass, AccessInfo, LineAddr};

/// Random replacement via a tiny xorshift PRNG (no external state).
#[derive(Debug)]
struct RandomReplacement {
    ways: usize,
    state: u64,
}

impl RandomReplacement {
    fn new(ways: usize, seed: u64) -> Self {
        RandomReplacement {
            ways,
            state: seed.max(1),
        }
    }

    fn next(&mut self) -> u64 {
        self.state ^= self.state << 13;
        self.state ^= self.state >> 7;
        self.state ^= self.state << 17;
        self.state
    }
}

impl ReplacementPolicy for RandomReplacement {
    fn name(&self) -> &'static str {
        "random"
    }

    fn on_fill(&mut self, _set: usize, _way: usize, _info: &AccessInfo) {}

    fn on_hit(&mut self, _set: usize, _way: usize, _info: &AccessInfo) {}

    fn victim(&mut self, _set: usize, _info: &AccessInfo) -> usize {
        (self.next() % self.ways as u64) as usize
    }

    fn on_evict(&mut self, _set: usize, _way: usize) {}
}

/// A looping scan with a hot subset: LRU exploits the hot reuse, random
/// replacement only partially.
fn drive(cache: &mut Cache, lines: u64) -> f64 {
    let mut hits = 0u64;
    let mut total = 0u64;
    for round in 0..200u64 {
        for i in 0..lines {
            // 8 hot lines touched every round + a rotating cold stream.
            let line = if i % 4 != 0 {
                i % 8
            } else {
                1000 + (round * lines + i) % 256
            };
            let info = AccessInfo::demand(7, LineAddr::new(line), AccessClass::NonReplayData);
            total += 1;
            if cache.lookup(&info, round * lines + i).is_some() {
                hits += 1;
            } else {
                cache.insert_miss(&info, 0, round * lines + i);
            }
        }
    }
    hits as f64 / total as f64
}

fn main() {
    let (sets, ways) = (16, 4);
    let mut lru =
        Cache::new("LRU", sets, ways, 1, 8, Lru::new(sets, ways)).expect("valid geometry");
    let mut rnd = Cache::new(
        "random",
        sets,
        ways,
        1,
        8,
        Box::new(RandomReplacement::new(ways, 0xC0FFEE)) as Box<dyn ReplacementPolicy>,
    )
    .expect("valid geometry");

    let lru_rate = drive(&mut lru, 64);
    let rnd_rate = drive(&mut rnd, 64);

    println!("hit rate with LRU    : {:.1}%", lru_rate * 100.0);
    println!("hit rate with random : {:.1}%", rnd_rate * 100.0);
    println!(
        "\nany type implementing `atc_cache::policy::ReplacementPolicy` plugs into\n\
         `Cache::new(...)` — the paper's T-DRRIP/T-SHiP wrappers in `atc-core` are\n\
         built on exactly this trait."
    );
}
