//! Quickstart: build the paper's baseline machine, run a workload, and
//! print the headline statistics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use atc_sim::{run_one, SimConfig, SimFailure};
use atc_types::{AccessClass, MemLevel, PtLevel};
use atc_workloads::{BenchmarkId, Scale};

fn main() -> Result<(), SimFailure> {
    // Table I machine: 352-entry ROB, 2048-entry STLB, 48K/512K/2M caches,
    // DRRIP at L2C and SHiP at the LLC.
    let cfg = SimConfig::baseline();

    // An mcf-like pointer-chasing workload, 100k warmup + 500k measured.
    // Invalid configurations and livelocked runs surface as errors here
    // rather than panics.
    let stats = run_one(&cfg, BenchmarkId::Mcf, Scale::Small, 42, 100_000, 500_000)?;

    println!("benchmark        : mcf (synthetic stand-in)");
    println!("instructions     : {}", stats.core.instructions);
    println!("cycles           : {}", stats.core.cycles);
    println!("IPC              : {:.3}", stats.core.ipc());
    println!("STLB MPKI        : {:.2}", stats.stlb_mpki());
    println!("page walks       : {}", stats.walks);
    println!(
        "LLC MPKI         : replay {:.2} | non-replay {:.2} | leaf-translation {:.2}",
        stats.llc_mpki(AccessClass::ReplayData),
        stats.llc_mpki(AccessClass::NonReplayData),
        stats.llc_mpki(AccessClass::Translation(PtLevel::L1)),
    );
    println!(
        "ROB stalls       : walk {} | replay {} | non-replay {} cycles",
        stats.core.stalls.stlb_walk,
        stats.core.stalls.replay_data,
        stats.core.stalls.non_replay_data,
    );
    // NaN when the run performed no walks at all.
    let onchip = stats.translation_hit_fraction_upto(MemLevel::Llc);
    if onchip.is_nan() {
        println!("translations serviced on-chip: n/a (no walks)");
    } else {
        println!("translations serviced on-chip: {:.1}%", onchip * 100.0);
    }
    Ok(())
}
