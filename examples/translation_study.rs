//! Translation study: compare the baseline against the paper's full
//! enhancement stack (T-DRRIP + T-SHiP + ATP + TEMPO) on a
//! high-STLB-MPKI graph workload, reproducing the Fig 14/16 story in
//! miniature.
//!
//! ```text
//! cargo run --release --example translation_study
//! ```

use atc_core::Enhancement;
use atc_sim::{run_one, SimConfig};
use atc_types::{AccessClass, MemLevel, PtLevel};
use atc_workloads::{BenchmarkId, Scale};

fn main() {
    let bench = BenchmarkId::Pr;
    let (warmup, measure) = (100_000, 500_000);

    println!("running pr on the enhancement ladder ({measure} instructions each)...\n");
    let base = run_one(
        &SimConfig::baseline(),
        bench,
        Scale::Small,
        42,
        warmup,
        measure,
    )
    .expect("baseline runs to completion");

    println!(
        "{:<10} {:>9} {:>7} {:>10} {:>10} {:>9} {:>8}",
        "config", "cycles", "speedup", "walkstall", "replstall", "T-MPKI", "onchipT"
    );
    let t = AccessClass::Translation(PtLevel::L1);
    for e in Enhancement::ALL {
        let cfg = SimConfig::with_enhancement(e);
        let s = run_one(&cfg, bench, Scale::Small, 42, warmup, measure)
            .expect("ladder step runs to completion");
        // NaN when the run performed no walks at all.
        let onchip = s.translation_hit_fraction_upto(MemLevel::Llc);
        let onchip = if onchip.is_nan() {
            "n/a".to_string()
        } else {
            format!("{:.1}%", onchip * 100.0)
        };
        println!(
            "{:<10} {:>9} {:>7.3} {:>10} {:>10} {:>9.3} {:>8}",
            e.label(),
            s.core.cycles,
            base.core.cycles as f64 / s.core.cycles as f64,
            s.core.stalls.stlb_walk,
            s.core.stalls.replay_data,
            s.llc_mpki(t),
            onchip,
        );
    }

    println!(
        "\nexpected shape (paper Fig 14/16): speedup grows down the ladder, walk/replay\n\
         stalls shrink, LLC translation MPKI collapses, and on-chip translation\n\
         service approaches 100%."
    );
}
