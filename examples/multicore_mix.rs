//! Running an 8-core multi-programmed mix (the paper's §V multi-core
//! evaluation in miniature): private L1D/L2C/TLBs per core, a shared
//! 16 MiB LLC, and the enhancement ladder's effect on each core.
//!
//! ```text
//! cargo run --release --example multicore_mix
//! ```

use atc_core::Enhancement;
use atc_sim::{run_multicore, SimConfig};
use atc_stats::harmonic_speedup;
use atc_workloads::{BenchmarkId, Scale, Workload};

fn main() {
    use BenchmarkId::*;
    let mix = [Pr, Xalancbmk, Cc, Canneal, Radii, Mcf, Bf, Tc];
    let (warmup, measure) = (20_000, 120_000);

    let run = |cfg: &SimConfig| {
        let mut wls: Vec<Box<dyn Workload>> = mix
            .iter()
            .enumerate()
            .map(|(i, b)| b.build(Scale::Small, i as u64 + 1))
            .collect();
        run_multicore(cfg, &mut wls, warmup, measure).expect("mix runs to completion")
    };

    println!("8-core heterogeneous mix, {measure} instructions per core\n");
    let base = run(&SimConfig::baseline());
    let enh = run(&SimConfig::with_enhancement(Enhancement::Tempo));

    println!(
        "{:<10} {:>12} {:>12} {:>9}",
        "core", "base IPC", "enh IPC", "speedup"
    );
    let mut speedups = Vec::new();
    for (i, b) in mix.iter().enumerate() {
        let s = base[i].cycles as f64 / enh[i].cycles as f64;
        speedups.push(s);
        println!(
            "{:<10} {:>12.3} {:>12.3} {:>9.3}",
            b.name(),
            base[i].ipc(),
            enh[i].ipc(),
            s
        );
    }
    println!(
        "\nharmonic speedup of the mix: {:.3}",
        harmonic_speedup(&speedups)
    );
}
