//! End-to-end integration tests spanning the whole stack: workloads →
//! core model → TLBs/PTW → caches → DRAM, with the paper's enhancements.

use atc_core::Enhancement;
use atc_sim::{run_one, Machine, SimConfig};
use atc_types::{AccessClass, MemLevel, PtLevel};
use atc_workloads::{BenchmarkId, Scale};

/// Shrink the STLB so Test-scale footprints still produce walks.
fn small_stlb(mut cfg: SimConfig) -> SimConfig {
    cfg.machine.stlb.entries = 256;
    cfg
}

fn run(cfg: &SimConfig, bench: BenchmarkId, n: u64) -> atc_sim::RunStats {
    run_one(cfg, bench, Scale::Test, 7, 10_000, n).expect("healthy run")
}

#[test]
fn every_benchmark_completes_on_every_ladder_step() {
    for bench in BenchmarkId::ALL {
        for e in Enhancement::ALL {
            let cfg = small_stlb(SimConfig::with_enhancement(e));
            let s = run(&cfg, bench, 20_000);
            assert_eq!(s.core.instructions, 20_000, "{bench:?} {e:?}");
            assert!(s.core.cycles > 0);
        }
    }
}

#[test]
fn enhancements_never_collapse_performance() {
    // The full ladder must stay within a few percent of baseline even on
    // a low-MPKI workload, and help on a high-MPKI one.
    let base_cfg = small_stlb(SimConfig::baseline());
    let enh_cfg = small_stlb(SimConfig::with_enhancement(Enhancement::Tempo));

    let base = run(&base_cfg, BenchmarkId::Canneal, 60_000);
    let enh = run(&enh_cfg, BenchmarkId::Canneal, 60_000);
    let speedup = base.core.cycles as f64 / enh.core.cycles as f64;
    assert!(speedup > 0.95, "canneal speedup collapsed: {speedup:.3}");
}

#[test]
fn t_policies_raise_onchip_translation_hit_fraction() {
    let base = run(
        &small_stlb(SimConfig::baseline()),
        BenchmarkId::Canneal,
        80_000,
    );
    let enh = run(
        &small_stlb(SimConfig::with_enhancement(Enhancement::TShip)),
        BenchmarkId::Canneal,
        80_000,
    );
    let b = base.translation_hit_fraction_upto(MemLevel::Llc);
    let e = enh.translation_hit_fraction_upto(MemLevel::Llc);
    assert!(
        !b.is_nan() && !e.is_nan(),
        "these runs walk; fraction defined"
    );
    assert!(
        e >= b - 0.02,
        "T-policies should not reduce on-chip translation hits ({e:.3} vs {b:.3})"
    );
}

#[test]
fn atp_prefetches_are_all_consumed_or_pending() {
    // ATP is non-speculative: every prefetch targets a block the replay
    // load is about to demand, so usefulness should be near total.
    let cfg = small_stlb(SimConfig::with_enhancement(Enhancement::Atp));
    let s = run(&cfg, BenchmarkId::Mcf, 100_000);
    assert!(s.atp_issued > 0);
    let useful = s.llc_prefetch.1 + s.l2c_prefetch.1;
    assert!(
        useful as f64 >= s.atp_issued as f64 * 0.5,
        "ATP usefulness too low: {useful} of {} issued",
        s.atp_issued
    );
}

#[test]
fn walks_equal_stlb_misses() {
    let s = run(&small_stlb(SimConfig::baseline()), BenchmarkId::Pr, 50_000);
    assert_eq!(s.walks, s.stlb.misses, "every STLB miss walks exactly once");
}

#[test]
fn replay_accesses_match_walked_loads() {
    let s = run(&small_stlb(SimConfig::baseline()), BenchmarkId::Cc, 50_000);
    // Each walked load performs exactly one replay data access at L1D.
    // (Stores also walk but are counted as Store class.)
    let replay_l1 = s.l1d.accesses(AccessClass::ReplayData);
    assert!(replay_l1 > 0);
    assert!(
        replay_l1 <= s.walks,
        "replay L1D accesses ({replay_l1}) cannot exceed walks ({})",
        s.walks
    );
}

#[test]
fn leaf_translations_flow_through_all_levels() {
    let s = run(
        &small_stlb(SimConfig::baseline()),
        BenchmarkId::Canneal,
        80_000,
    );
    let t = AccessClass::Translation(PtLevel::L1);
    assert!(s.l1d.accesses(t) > 0, "leaf PTE reads start at L1D");
    assert!(s.l2c.accesses(t) > 0, "some leaf PTE reads reach L2C");
    // Service-level accounting is complete.
    let total: u64 = s.service_translation.iter().sum();
    assert_eq!(total, s.walks);
}

#[test]
fn dram_sees_traffic_under_thrash() {
    let s = run(
        &small_stlb(SimConfig::baseline()),
        BenchmarkId::Canneal,
        50_000,
    );
    assert!(s.dram.requests > 0);
    assert!(s.dram.row_hits + s.dram.row_misses == s.dram.requests);
}

#[test]
fn ideal_oracle_for_both_classes_is_fastest() {
    let mut ideal_cfg = small_stlb(SimConfig::baseline());
    ideal_cfg.ideal = atc_core::IdealConfig::both_levels_both_classes();
    let base = run(
        &small_stlb(SimConfig::baseline()),
        BenchmarkId::Canneal,
        80_000,
    );
    let ideal = run(&ideal_cfg, BenchmarkId::Canneal, 80_000);
    assert!(
        ideal.core.cycles <= base.core.cycles,
        "oracle cannot be slower ({} vs {})",
        ideal.core.cycles,
        base.core.cycles
    );
}

#[test]
fn machine_is_reusable_across_runs() {
    let cfg = small_stlb(SimConfig::baseline());
    let mut m = Machine::new(&cfg).expect("valid config");
    let mut wl = BenchmarkId::Tc.build(Scale::Test, 3);
    let a = m.run(wl.as_mut(), 1_000, 10_000).expect("healthy run");
    let b = m.run(wl.as_mut(), 1_000, 10_000).expect("healthy run");
    assert_eq!(a.core.instructions, b.core.instructions);
    // Second run starts warmer; it should not be drastically slower.
    assert!(b.core.cycles < a.core.cycles * 2);
}
