//! Integration tests for replacement policies driven through the full
//! simulator (not just unit-level transition tables).

use atc_core::PolicyChoice;
use atc_sim::{run_one, SimConfig};
use atc_types::{AccessClass, PtLevel};
use atc_workloads::{BenchmarkId, Scale};

fn run_with_llc(policy: PolicyChoice, bench: BenchmarkId) -> atc_sim::RunStats {
    let mut cfg = SimConfig::baseline();
    cfg.machine.stlb.entries = 256;
    cfg.llc_policy = policy;
    run_one(&cfg, bench, Scale::Test, 11, 10_000, 60_000).expect("healthy run")
}

#[test]
fn all_llc_policies_run_end_to_end() {
    for p in [
        PolicyChoice::Lru,
        PolicyChoice::Srrip,
        PolicyChoice::Drrip,
        PolicyChoice::Ship,
        PolicyChoice::Hawkeye,
        PolicyChoice::ShipNewSign,
        PolicyChoice::TShip,
        PolicyChoice::THawkeye,
    ] {
        let s = run_with_llc(p, BenchmarkId::Canneal);
        assert_eq!(s.core.instructions, 60_000, "{p:?}");
        assert!(s.llc.total_accesses() > 0, "{p:?} saw no LLC traffic");
    }
}

#[test]
fn tship_beats_ship_on_translation_misses() {
    let t = AccessClass::Translation(PtLevel::L1);
    let ship = run_with_llc(PolicyChoice::Ship, BenchmarkId::Canneal);
    let tship = run_with_llc(PolicyChoice::TShip, BenchmarkId::Canneal);
    let (a, b) = (ship.llc.misses(t), tship.llc.misses(t));
    assert!(
        b <= a,
        "T-SHiP must not increase LLC translation misses ({b} vs {a})"
    );
}

#[test]
fn policies_cannot_change_replay_traffic_volume() {
    // Replay *accesses* are a property of the TLB behaviour, not the LLC
    // policy: identical across policies at the L1D.
    let a = run_with_llc(PolicyChoice::Lru, BenchmarkId::Cc);
    let b = run_with_llc(PolicyChoice::Hawkeye, BenchmarkId::Cc);
    assert_eq!(
        a.l1d.accesses(AccessClass::ReplayData),
        b.l1d.accesses(AccessClass::ReplayData)
    );
}

#[test]
fn t_drrip_at_l2c_does_not_hurt_l2c_non_replay_hits() {
    let mut base_cfg = SimConfig::baseline();
    base_cfg.machine.stlb.entries = 256;
    let base =
        run_one(&base_cfg, BenchmarkId::Tc, Scale::Test, 11, 10_000, 60_000).expect("healthy run");

    let mut t_cfg = base_cfg.clone();
    t_cfg.l2c_policy = PolicyChoice::TDrrip;
    let t = run_one(&t_cfg, BenchmarkId::Tc, Scale::Test, 11, 10_000, 60_000).expect("healthy run");

    let n = AccessClass::NonReplayData;
    let base_rate = base.l2c.hit_rate(n);
    let t_rate = t.l2c.hit_rate(n);
    assert!(
        t_rate > base_rate - 0.1,
        "T-DRRIP collapsed non-replay hit rate: {t_rate:.3} vs {base_rate:.3}"
    );
}

#[test]
fn hawkeye_and_ship_disagree_somewhere() {
    // Sanity: the two signature-based policies are genuinely different
    // policies, not accidentally aliased implementations. Shrink the
    // caches so the Test-scale working set creates real LLC contention
    // and reuse (victim choices only matter when sets cycle).
    let run = |p: PolicyChoice| {
        let mut cfg = SimConfig::baseline();
        cfg.machine.stlb.entries = 256;
        cfg.machine.l2c.size_bytes = 64 * 1024;
        cfg.machine.llc.size_bytes = 256 * 1024;
        cfg.llc_policy = p;
        // xalancbmk's hot region (1 MiB) thrashes the shrunken LLC with
        // real reuse, so victim choices change outcomes.
        run_one(
            &cfg,
            BenchmarkId::Xalancbmk,
            Scale::Test,
            11,
            10_000,
            80_000,
        )
        .expect("healthy run")
    };
    let a = run(PolicyChoice::Ship);
    let b = run(PolicyChoice::Hawkeye);
    assert!(
        a.llc.hits(atc_types::AccessClass::NonReplayData) > 0,
        "need LLC reuse"
    );
    assert_ne!(
        (a.llc.total_misses(), a.core.cycles),
        (b.llc.total_misses(), b.core.cycles)
    );
}
