//! Integration tests of the virtual-memory machinery as seen through the
//! full simulator: PSC walk shortening, PTE caching in the data
//! hierarchy, and translation/service accounting.

use atc_sim::{run_one, SimConfig};
use atc_types::{config::MachineConfig, AccessClass, PtLevel, Vpn};
use atc_vm::{TranslationEngine, TranslationQuery};
use atc_workloads::{BenchmarkId, Scale};

#[test]
fn psc_cuts_average_walk_length() {
    // Drive a dense page sequence: after the first full walk, neighbours
    // should start at the leaf thanks to PSCL2.
    let mut mmu = TranslationEngine::new(&MachineConfig::default());
    let mut total_steps = 0usize;
    let n = 512;
    for i in 0..n {
        let vpn = Vpn::new(0x40_0000 + i);
        match mmu.query(vpn).expect("valid vpn") {
            TranslationQuery::Walk(plan) => {
                total_steps += plan.steps.len();
                mmu.complete_walk(&plan);
            }
            _ => panic!("dense fresh pages must walk"),
        }
    }
    let avg = total_steps as f64 / n as f64;
    assert!(
        avg < 1.2,
        "PSCs should make walks ~1 step on dense pages (avg {avg:.2})"
    );
}

#[test]
fn psc_disabled_equivalent_cold_regions_walk_longer() {
    // Jumping across distant regions defeats the small upper-level PSCs:
    // average walk length grows well beyond the dense case.
    let mut mmu = TranslationEngine::new(&MachineConfig::default());
    let mut total_steps = 0usize;
    let n = 128;
    for i in 0..n {
        // Distinct L4 regions (bit 39+) so even PSCL5 (2 entries) thrashes.
        let vpn = Vpn::new((i as u64) << 28);
        match mmu.query(vpn).expect("valid vpn") {
            TranslationQuery::Walk(plan) => {
                total_steps += plan.steps.len();
                mmu.complete_walk(&plan);
            }
            _ => panic!("fresh regions must walk"),
        }
    }
    let avg = total_steps as f64 / n as f64;
    assert!(
        avg > 1.5,
        "distant regions should defeat the PSCs (avg {avg:.2})"
    );
}

#[test]
fn pte_blocks_are_cached_and_reused_across_neighbour_walks() {
    // A workload with spatial page locality reuses leaf PTE blocks:
    // translation hit rate at L1D must be non-trivial.
    let mut cfg = SimConfig::baseline();
    cfg.machine.stlb.entries = 128; // force walks
    let s = run_one(&cfg, BenchmarkId::Tc, Scale::Test, 5, 10_000, 60_000).expect("healthy run");
    let t = AccessClass::Translation(PtLevel::L1);
    assert!(
        s.l1d.accesses(t) > 100,
        "few leaf PTE reads: {}",
        s.l1d.accesses(t)
    );
    let hit_rate = s.l1d.hit_rate(t);
    assert!(
        hit_rate > 0.05,
        "leaf PTE blocks never reused at L1D ({hit_rate:.3})"
    );
}

#[test]
fn intermediate_levels_rarely_reach_memory() {
    // PSCs cover levels 5..2, so non-leaf PTE reads through the caches
    // should be far fewer than leaf reads.
    let mut cfg = SimConfig::baseline();
    cfg.machine.stlb.entries = 128;
    let s = run_one(&cfg, BenchmarkId::Pr, Scale::Test, 5, 10_000, 60_000).expect("healthy run");
    let leaf = s.l1d.accesses(AccessClass::Translation(PtLevel::L1));
    let mid = s.l1d.accesses(AccessClass::Translation(PtLevel::L3));
    assert!(
        mid < leaf / 2,
        "intermediate PTE reads ({mid}) should be rare vs leaf ({leaf})"
    );
}

#[test]
fn bigger_stlb_reduces_walks_for_same_stream() {
    let mk = |entries: usize| {
        let mut cfg = SimConfig::baseline();
        cfg.machine.stlb.entries = entries;
        run_one(&cfg, BenchmarkId::Canneal, Scale::Test, 5, 10_000, 60_000).expect("healthy run")
    };
    let small = mk(128);
    let big = mk(2048);
    assert!(
        big.walks < small.walks,
        "2048-entry STLB must walk less than 128-entry ({} vs {})",
        big.walks,
        small.walks
    );
}

#[test]
fn dtlb_filters_most_stlb_traffic() {
    let s = run_one(
        &SimConfig::baseline(),
        BenchmarkId::Xalancbmk,
        Scale::Test,
        5,
        10_000,
        60_000,
    )
    .expect("healthy run");
    // Every memory op queries the DTLB; only its misses reach the STLB.
    assert!(s.stlb.accesses() < s.dtlb.accesses());
    assert_eq!(s.stlb.accesses(), s.dtlb.misses);
}
