//! Property-based tests (proptest) over the core data structures and
//! invariants: page table, TLB LRU, caches, RRIP bounds, recall probe,
//! MSHR merging, and histograms.

use proptest::prelude::*;

use atc_cache::policy::{Drrip, Lru, ReplacementPolicy, Ship, Srrip, RRPV_MAX};
use atc_prefetch::{PrefetchContext, PrefetchRequest, Prefetcher};
use atc_types::VirtAddr;
use atc_workloads::trace::{Trace, TraceReplay};
use atc_workloads::{Instr, MemOp, Workload};
use atc_cache::{Cache, Mshr};
use atc_stats::recall::RecallProbe;
use atc_stats::Histogram;
use atc_types::{AccessClass, AccessInfo, LineAddr, PtLevel, Vpn};
use atc_vm::{PageTable, Tlb};
use std::collections::{HashMap, HashSet, VecDeque};

proptest! {
    #[test]
    fn page_table_translations_are_stable_and_unique(vpns in proptest::collection::vec(0u64..1 << 30, 1..200)) {
        let mut pt = PageTable::new();
        let mut seen: HashMap<u64, _> = HashMap::new();
        for &v in &vpns {
            let pfn = pt.ensure_mapped(Vpn::new(v));
            if let Some(prev) = seen.insert(v, pfn) {
                prop_assert_eq!(prev, pfn, "remap changed translation");
            }
        }
        // Distinct VPNs never share a frame.
        let frames: HashSet<_> = seen.values().collect();
        prop_assert_eq!(frames.len(), seen.len());
        // And translate() agrees with ensure_mapped().
        for (&v, &pfn) in &seen {
            prop_assert_eq!(pt.translate(Vpn::new(v)), Some(pfn));
        }
    }

    #[test]
    fn pte_addresses_never_collide_across_vpns(vpns in proptest::collection::hash_set(0u64..1 << 24, 2..64)) {
        let mut pt = PageTable::new();
        for &v in &vpns {
            pt.ensure_mapped(Vpn::new(v));
        }
        // Leaf PTE byte addresses are unique per VPN.
        let mut seen = HashSet::new();
        for &v in &vpns {
            let a = pt.pte_addr(Vpn::new(v), PtLevel::L1);
            prop_assert!(seen.insert(a), "leaf PTE address collision for vpn {}", v);
        }
    }

    #[test]
    fn tlb_matches_reference_lru_model(ops in proptest::collection::vec((0u64..64, any::<bool>()), 1..400)) {
        use atc_types::{config::TlbConfig, Pfn};
        // 1-set fully-associative TLB vs a reference LRU list.
        let mut tlb = Tlb::new(&TlbConfig { entries: 4, ways: 4, latency: 1 });
        let mut reference: VecDeque<u64> = VecDeque::new(); // front = MRU
        for (v, is_fill) in ops {
            let vpn = Vpn::new(v * 4); // all map to set 0 (4 sets... entries/ways = 1 set)
            if is_fill {
                if let Some(pos) = reference.iter().position(|&x| x == v) {
                    reference.remove(pos);
                } else if reference.len() == 4 {
                    reference.pop_back();
                }
                reference.push_front(v);
                tlb.fill(vpn, Pfn::new(v));
            } else {
                let hit = tlb.lookup(vpn).is_some();
                let ref_hit = reference.contains(&v);
                prop_assert_eq!(hit, ref_hit, "lookup divergence on {}", v);
                if ref_hit {
                    let pos = reference.iter().position(|&x| x == v).unwrap();
                    reference.remove(pos);
                    reference.push_front(v);
                }
            }
        }
    }

    #[test]
    fn cache_never_exceeds_associativity(lines in proptest::collection::vec(0u64..512, 1..500)) {
        let sets = 8usize;
        let ways = 4usize;
        let mut c = Cache::new("P", sets, ways, 1, 4, Box::new(Lru::new(sets, ways)));
        for &l in &lines {
            let info = AccessInfo::demand(1, LineAddr::new(l), AccessClass::NonReplayData);
            if c.lookup(&info, 0).is_none() {
                c.insert_miss(&info, 10, 0);
            }
        }
        for set in 0..sets as u64 {
            let resident = (0..512u64)
                .filter(|&l| l % sets as u64 == set && c.contains(LineAddr::new(l)))
                .count();
            prop_assert!(resident <= ways, "set {} holds {} lines", set, resident);
        }
    }

    #[test]
    fn srrip_rrpvs_stay_bounded(ops in proptest::collection::vec((0usize..4, 0usize..4, 0u8..3), 1..300)) {
        let mut p = Srrip::new(4, 4);
        let info = AccessInfo::demand(0, LineAddr::new(0), AccessClass::NonReplayData);
        for (set, way, op) in ops {
            match op {
                0 => p.on_fill(set, way, &info),
                1 => p.on_hit(set, way, &info),
                _ => {
                    let v = p.victim(set, &info);
                    prop_assert!(v < 4);
                }
            }
            for w in 0..4 {
                prop_assert!(p.rrpv(set, w) <= RRPV_MAX);
            }
        }
    }

    #[test]
    fn ship_victims_are_always_in_range(ops in proptest::collection::vec((0usize..4, 0u64..32), 1..300)) {
        let mut p = Ship::new(4, 4);
        for (i, (set, ip)) in ops.into_iter().enumerate() {
            let info = AccessInfo::demand(ip, LineAddr::new(ip), AccessClass::NonReplayData);
            match i % 3 {
                0 => p.on_fill(set, i % 4, &info),
                1 => p.on_hit(set, i % 4, &info),
                _ => {
                    let v = p.victim(set, &info);
                    prop_assert!(v < 4);
                }
            }
        }
    }

    #[test]
    fn recall_probe_matches_naive_reference(ops in proptest::collection::vec((0u64..24, any::<bool>()), 1..300)) {
        // One set; cap high enough to never overflow.
        let mut probe = RecallProbe::new(1, 1000);
        // Reference: open windows as (victim, unique set of lines seen).
        let mut open: Vec<(u64, HashSet<u64>)> = Vec::new();
        let mut recorded: Vec<u64> = Vec::new();
        for (line, is_evict) in ops {
            if is_evict {
                open.retain(|w| w.0 != line);
                open.push((line, HashSet::new()));
                probe.on_evict(0, LineAddr::new(line));
            } else {
                let mut closed = None;
                open.retain(|w| {
                    if w.0 == line {
                        closed = Some(w.1.len() as u64);
                        false
                    } else {
                        true
                    }
                });
                for w in open.iter_mut() {
                    w.1.insert(line);
                }
                if let Some(d) = closed {
                    recorded.push(d);
                }
                probe.on_access(0, LineAddr::new(line));
            }
        }
        let hist = probe.histogram();
        prop_assert_eq!(hist.count(), recorded.len() as u64);
        prop_assert_eq!(hist.sum(), recorded.iter().sum::<u64>());
    }

    #[test]
    fn mshr_merge_returns_allocated_ready(allocs in proptest::collection::vec((0u64..64, 1u64..500), 1..40)) {
        let mut m = Mshr::new(64);
        let mut expected: HashMap<u64, u64> = HashMap::new();
        for (line, extra) in allocs {
            if let Some(&r) = expected.get(&line) {
                // Merge before expiry must return the stored ready.
                if let Some(got) = m.merge(LineAddr::new(line), 0, false) {
                    prop_assert_eq!(got, r);
                }
            } else {
                let ready = m.allocate(LineAddr::new(line), 0, extra, false);
                expected.insert(line, ready);
            }
        }
    }

    #[test]
    fn drrip_victims_in_range_and_psel_bounded(ops in proptest::collection::vec((0usize..64, 0u8..3), 1..400)) {
        let mut p = Drrip::new(64, 8);
        let info = AccessInfo::demand(3, LineAddr::new(0), AccessClass::NonReplayData);
        for (i, (set, op)) in ops.into_iter().enumerate() {
            match op {
                0 => p.on_fill(set, i % 8, &info),
                1 => p.on_hit(set, i % 8, &info),
                _ => {
                    let v = p.victim(set, &info);
                    prop_assert!(v < 8);
                }
            }
            prop_assert!(p.psel() <= 1023);
        }
    }

    #[test]
    fn spatial_prefetchers_never_cross_pages(lines in proptest::collection::vec(0u64..(1 << 20), 1..300)) {
        let mut spp = atc_prefetch::Spp::new();
        let mut bingo = atc_prefetch::Bingo::new();
        for &l in &lines {
            let ctx = PrefetchContext {
                ip: 9,
                line: LineAddr::new(l),
                vaddr: VirtAddr::new(l << 6),
                hit: false,
            };
            for req in spp.on_access(&ctx).into_iter().chain(bingo.on_access(&ctx)) {
                match req {
                    PrefetchRequest::Phys(p) => {
                        prop_assert_eq!(p.raw() >> 6, l >> 6, "crossed a page boundary");
                    }
                    PrefetchRequest::Virt(_) => prop_assert!(false, "spatial PF emitted virtual"),
                }
            }
        }
    }

    #[test]
    fn isb_only_predicts_previously_seen_lines(lines in proptest::collection::vec(0u64..4096, 1..300)) {
        let mut isb = atc_prefetch::Isb::new();
        let mut seen = HashSet::new();
        for &l in &lines {
            let ctx = PrefetchContext {
                ip: 5,
                line: LineAddr::new(l),
                vaddr: VirtAddr::new(l << 6),
                hit: false,
            };
            for req in isb.on_access(&ctx) {
                if let PrefetchRequest::Phys(p) = req {
                    prop_assert!(seen.contains(&p.raw()), "ISB invented line {}", p.raw());
                }
            }
            seen.insert(l);
        }
    }

    #[test]
    fn trace_serialization_round_trips(
        items in proptest::collection::vec((0u64..1 << 48, 0u64..(1 << 57), 0u8..4), 1..200)
    ) {
        let mut t = Trace::new();
        let mut originals = Vec::new();
        for (ip, addr, kind) in items {
            let i = match kind {
                0 => Instr::alu(ip),
                1 => Instr::load(ip, VirtAddr::new(addr)),
                2 => Instr::load_dep(ip, VirtAddr::new(addr)),
                _ => Instr::store(ip, VirtAddr::new(addr)),
            };
            t.push(&i);
            originals.push(i);
        }
        let mut buf = Vec::new();
        t.to_writer(&mut buf).unwrap();
        let t2 = Trace::from_reader(&buf[..]).unwrap();
        let mut rp = TraceReplay::new(t2);
        for orig in &originals {
            let got = rp.next_instr();
            prop_assert_eq!(&got, orig);
        }
    }

    #[test]
    fn workload_memops_stay_in_57_bits(seed in 0u64..50) {
        use atc_workloads::{BenchmarkId, Scale};
        for b in [BenchmarkId::Pr, BenchmarkId::Mcf, BenchmarkId::Canneal] {
            let mut wl = b.build(Scale::Test, seed);
            for _ in 0..500 {
                if let Some(MemOp::Load(a) | MemOp::Store(a)) = wl.next_instr().op {
                    prop_assert!(a.raw() < 1 << 57, "{} emitted a >57-bit VA", b.name());
                }
            }
        }
    }

    #[test]
    fn histogram_count_and_sum_are_exact(samples in proptest::collection::vec(0u64..10_000, 0..200)) {
        let mut h = Histogram::new(10, 50);
        for &s in &samples {
            h.record(s);
        }
        prop_assert_eq!(h.count(), samples.len() as u64);
        prop_assert_eq!(h.sum(), samples.iter().sum::<u64>());
        prop_assert_eq!(h.max(), samples.iter().max().copied().unwrap_or(0));
        let below = h.fraction_below(100);
        let expect = if samples.is_empty() {
            0.0
        } else {
            samples.iter().filter(|&&s| s < 100).count() as f64 / samples.len() as f64
        };
        prop_assert!((below - expect).abs() < 1e-9);
    }
}
