//! Property-style tests over the core data structures and invariants:
//! page table, TLB LRU, caches, RRIP bounds, recall probe, MSHR merging,
//! and histograms.
//!
//! Each test runs many randomized cases driven by the in-tree seeded
//! [`SimRng`] (no external property-testing dependency), so failures
//! reproduce deterministically: the panic message names the fixed seed
//! and case index.

use atc_cache::policy::{Drrip, Lru, ReplacementPolicy, Ship, Srrip, RRPV_MAX};
use atc_cache::{Cache, Mshr};
use atc_prefetch::{PrefetchContext, PrefetchRequest, Prefetcher};
use atc_stats::recall::RecallProbe;
use atc_stats::Histogram;
use atc_types::{AccessClass, AccessInfo, LineAddr, PtLevel, SimRng, VirtAddr, Vpn};
use atc_vm::{PageTable, Tlb};
use atc_workloads::trace::{Trace, TraceReplay};
use atc_workloads::{Instr, MemOp, Workload};
use std::collections::{HashMap, HashSet, VecDeque};

/// Randomized cases per property.
const CASES: u64 = 48;

/// Per-case RNG: deterministic, distinct across tests and cases.
fn rng_for(test_tag: u64, case: u64) -> SimRng {
    SimRng::seed_from_u64(0x5EED_0000_0000_0000 ^ (test_tag << 32) ^ case)
}

/// `len` uniform in `[lo, hi)`.
fn rand_len(rng: &mut SimRng, lo: u64, hi: u64) -> usize {
    (lo + rng.next_below(hi - lo)) as usize
}

#[test]
fn page_table_translations_are_stable_and_unique() {
    for case in 0..CASES {
        let mut rng = rng_for(1, case);
        let n = rand_len(&mut rng, 1, 200);
        let vpns: Vec<u64> = (0..n).map(|_| rng.next_below(1 << 30)).collect();
        let mut pt = PageTable::new();
        let mut seen: HashMap<u64, _> = HashMap::new();
        for &v in &vpns {
            let pfn = pt.ensure_mapped(Vpn::new(v));
            if let Some(prev) = seen.insert(v, pfn) {
                assert_eq!(prev, pfn, "case {case}: remap changed translation");
            }
        }
        // Distinct VPNs never share a frame.
        let frames: HashSet<_> = seen.values().collect();
        assert_eq!(frames.len(), seen.len(), "case {case}: frame collision");
        // And translate() agrees with ensure_mapped().
        for (&v, &pfn) in &seen {
            assert_eq!(pt.translate(Vpn::new(v)), Some(pfn), "case {case}: vpn {v}");
        }
    }
}

#[test]
fn pte_addresses_never_collide_across_vpns() {
    for case in 0..CASES {
        let mut rng = rng_for(2, case);
        let target = rand_len(&mut rng, 2, 64);
        let mut vpns = HashSet::new();
        while vpns.len() < target {
            vpns.insert(rng.next_below(1 << 24));
        }
        let mut pt = PageTable::new();
        for &v in &vpns {
            pt.ensure_mapped(Vpn::new(v));
        }
        // Leaf PTE byte addresses are unique per VPN.
        let mut seen = HashSet::new();
        for &v in &vpns {
            let a = pt
                .pte_addr(Vpn::new(v), PtLevel::L1)
                .expect("mapped vpn has a leaf PTE");
            assert!(
                seen.insert(a),
                "case {case}: leaf PTE address collision for vpn {v}"
            );
        }
    }
}

#[test]
fn tlb_matches_reference_lru_model() {
    use atc_types::{config::TlbConfig, Pfn};
    for case in 0..CASES {
        let mut rng = rng_for(3, case);
        let n = rand_len(&mut rng, 1, 400);
        // 1-set fully-associative TLB vs a reference LRU list.
        let mut tlb = Tlb::new(&TlbConfig {
            entries: 4,
            ways: 4,
            latency: 1,
        });
        let mut reference: VecDeque<u64> = VecDeque::new(); // front = MRU
        for _ in 0..n {
            let v = rng.next_below(64);
            let is_fill = rng.chance(0.5);
            let vpn = Vpn::new(v * 4); // entries/ways = 1 set: everything maps to set 0
            if is_fill {
                if let Some(pos) = reference.iter().position(|&x| x == v) {
                    reference.remove(pos);
                } else if reference.len() == 4 {
                    reference.pop_back();
                }
                reference.push_front(v);
                tlb.fill(vpn, Pfn::new(v));
            } else {
                let hit = tlb.lookup(vpn).is_some();
                let ref_hit = reference.contains(&v);
                assert_eq!(hit, ref_hit, "case {case}: lookup divergence on {v}");
                if ref_hit {
                    let pos = reference.iter().position(|&x| x == v).unwrap();
                    reference.remove(pos);
                    reference.push_front(v);
                }
            }
        }
    }
}

#[test]
fn cache_never_exceeds_associativity() {
    let sets = 8usize;
    let ways = 4usize;
    for case in 0..CASES {
        let mut rng = rng_for(4, case);
        let n = rand_len(&mut rng, 1, 500);
        let mut c =
            Cache::new("P", sets, ways, 1, 4, Lru::new(sets, ways)).expect("valid test geometry");
        // The cycle advances per access and each fill is ready
        // immediately, so no MSHR entry outlives the access that
        // allocated it (`insert_miss` requires the caller to have ruled
        // out an in-flight fill, as the hierarchy access paths do).
        for t in 0..n as u64 {
            let l = rng.next_below(512);
            let info = AccessInfo::demand(1, LineAddr::new(l), AccessClass::NonReplayData);
            if c.lookup(&info, t).is_none() {
                c.insert_miss(&info, t, t);
            }
        }
        for set in 0..sets as u64 {
            let resident = (0..512u64)
                .filter(|&l| l % sets as u64 == set && c.contains(LineAddr::new(l)))
                .count();
            assert!(
                resident <= ways,
                "case {case}: set {set} holds {resident} lines"
            );
        }
    }
}

/// Reference model of the pre-tag-array cache: per-way `Option<u64>`
/// lines scanned linearly, modulo set selection, first-empty-way fill,
/// and true-LRU stamps — the behavior the split tag array must preserve
/// bit for bit.
struct RefCache {
    sets: usize,
    ways: usize,
    lines: Vec<Option<u64>>,
    stamp: Vec<u64>,
    clock: u64,
}

impl RefCache {
    fn new(sets: usize, ways: usize) -> Self {
        RefCache {
            sets,
            ways,
            lines: vec![None; sets * ways],
            stamp: vec![0; sets * ways],
            clock: 0,
        }
    }

    fn touch(&mut self, slot: usize) {
        self.clock += 1;
        self.stamp[slot] = self.clock;
    }

    /// Access `line`: `(hit, evicted_line)`.
    fn access(&mut self, line: u64) -> (bool, Option<u64>) {
        let set = line as usize % self.sets;
        let base = set * self.ways;
        for w in 0..self.ways {
            if self.lines[base + w] == Some(line) {
                self.touch(base + w);
                return (true, None);
            }
        }
        let way = (0..self.ways)
            .find(|&w| self.lines[base + w].is_none())
            .unwrap_or_else(|| {
                (0..self.ways)
                    .min_by_key(|&w| self.stamp[base + w])
                    .expect("ways > 0")
            });
        let evicted = self.lines[base + way];
        self.lines[base + way] = Some(line);
        self.touch(base + way);
        (false, evicted)
    }

    fn contains(&self, line: u64) -> bool {
        let base = (line as usize % self.sets) * self.ways;
        self.lines[base..base + self.ways].contains(&Some(line))
    }
}

#[test]
fn tag_array_cache_matches_reference_scan_model() {
    // Drive the real cache and the reference through the same 10k-access
    // random streams and demand identical hits, misses, evictions, and
    // final contents.
    let (sets, ways) = (16usize, 4usize);
    for case in 0..8u64 {
        let mut rng = rng_for(15, case);
        let mut c =
            Cache::new("P", sets, ways, 1, 4, Lru::new(sets, ways)).expect("valid test geometry");
        let mut reference = RefCache::new(sets, ways);
        let (mut hits, mut evictions) = (0u64, 0u64);
        // The cycle advances per access with immediately-ready fills so
        // the MSHR stays empty (the reference model has no MSHR; see
        // `insert_miss`'s merge-first contract).
        for i in 0..10_000u64 {
            let line = rng.next_below(4096);
            let info = AccessInfo::demand(1, LineAddr::new(line), AccessClass::NonReplayData);
            let (ref_hit, ref_evicted) = reference.access(line);
            match c.lookup(&info, i) {
                Some(_) => {
                    assert!(ref_hit, "case {case} access {i}: spurious hit on {line}");
                    hits += 1;
                }
                None => {
                    assert!(!ref_hit, "case {case} access {i}: spurious miss on {line}");
                    let (_, ev) = c.insert_miss(&info, i, i);
                    assert_eq!(
                        ev.map(|e| e.addr.raw()),
                        ref_evicted,
                        "case {case} access {i}: eviction divergence on {line}"
                    );
                    evictions += u64::from(ev.is_some());
                }
            }
        }
        let total_hits = c.stats().total_accesses() - c.stats().total_misses();
        assert_eq!(total_hits, hits, "case {case}: hit total");
        assert_eq!(c.eviction_stats().1, evictions, "case {case}: evictions");
        for line in 0..4096u64 {
            assert_eq!(
                c.contains(LineAddr::new(line)),
                reference.contains(line),
                "case {case}: residency divergence on {line}"
            );
        }
    }
}

#[test]
fn srrip_rrpvs_stay_bounded() {
    for case in 0..CASES {
        let mut rng = rng_for(5, case);
        let n = rand_len(&mut rng, 1, 300);
        let mut p = Srrip::new(4, 4);
        let info = AccessInfo::demand(0, LineAddr::new(0), AccessClass::NonReplayData);
        for _ in 0..n {
            let set = rng.next_below(4) as usize;
            let way = rng.next_below(4) as usize;
            match rng.next_below(3) {
                0 => p.on_fill(set, way, &info),
                1 => p.on_hit(set, way, &info),
                _ => {
                    let v = p.victim(set, &info);
                    assert!(v < 4, "case {case}: victim {v} out of range");
                }
            }
            for w in 0..4 {
                assert!(
                    p.rrpv(set, w) <= RRPV_MAX,
                    "case {case}: RRPV out of bounds"
                );
            }
        }
    }
}

#[test]
fn ship_victims_are_always_in_range() {
    for case in 0..CASES {
        let mut rng = rng_for(6, case);
        let n = rand_len(&mut rng, 1, 300);
        let mut p = Ship::new(4, 4);
        for i in 0..n {
            let set = rng.next_below(4) as usize;
            let ip = rng.next_below(32);
            let info = AccessInfo::demand(ip, LineAddr::new(ip), AccessClass::NonReplayData);
            match i % 3 {
                0 => p.on_fill(set, i % 4, &info),
                1 => p.on_hit(set, i % 4, &info),
                _ => {
                    let v = p.victim(set, &info);
                    assert!(v < 4, "case {case}: victim {v} out of range");
                }
            }
        }
    }
}

#[test]
fn recall_probe_matches_naive_reference() {
    for case in 0..CASES {
        let mut rng = rng_for(7, case);
        let n = rand_len(&mut rng, 1, 300);
        // One set; cap high enough to never overflow.
        let mut probe = RecallProbe::new(1, 1000);
        // Reference: open windows as (victim, unique set of lines seen).
        let mut open: Vec<(u64, HashSet<u64>)> = Vec::new();
        let mut recorded: Vec<u64> = Vec::new();
        for _ in 0..n {
            let line = rng.next_below(24);
            let is_evict = rng.chance(0.5);
            if is_evict {
                open.retain(|w| w.0 != line);
                open.push((line, HashSet::new()));
                probe.on_evict(0, LineAddr::new(line));
            } else {
                let mut closed = None;
                open.retain(|w| {
                    if w.0 == line {
                        closed = Some(w.1.len() as u64);
                        false
                    } else {
                        true
                    }
                });
                for w in open.iter_mut() {
                    w.1.insert(line);
                }
                if let Some(d) = closed {
                    recorded.push(d);
                }
                probe.on_access(0, LineAddr::new(line));
            }
        }
        let hist = probe.histogram();
        assert_eq!(hist.count(), recorded.len() as u64, "case {case}: count");
        assert_eq!(hist.sum(), recorded.iter().sum::<u64>(), "case {case}: sum");
    }
}

#[test]
fn mshr_merge_returns_allocated_ready() {
    for case in 0..CASES {
        let mut rng = rng_for(8, case);
        let n = rand_len(&mut rng, 1, 40);
        let mut m = Mshr::new(64).expect("valid capacity");
        let mut expected: HashMap<u64, u64> = HashMap::new();
        for _ in 0..n {
            let line = rng.next_below(64);
            let extra = 1 + rng.next_below(499);
            if let Some(&r) = expected.get(&line) {
                // Merge before expiry must return the stored ready.
                if let Some(got) = m.merge(LineAddr::new(line), 0, false) {
                    assert_eq!(got, r, "case {case}: merge returned wrong ready");
                }
            } else {
                let ready = m.allocate(LineAddr::new(line), 0, extra, false);
                expected.insert(line, ready);
            }
        }
    }
}

#[test]
fn mshr_never_leaks_entries_over_random_fill_drain_cycles() {
    // Robustness property: after arbitrary protocol-honoring
    // interleavings of allocates, merges, and time advances, the file
    // never exceeds its capacity and fully drains once the clock passes
    // every outstanding fill. "Protocol-honoring" means merge-first:
    // a miss allocates only after `merge` found nothing in flight,
    // exactly like every hierarchy access path.
    for case in 0..CASES {
        let mut rng = rng_for(9, case);
        let capacity = 1 + rand_len(&mut rng, 1, 16);
        let mut m = Mshr::new(capacity).expect("valid capacity");
        let mut cycle = 0u64;
        let mut max_ready = 0u64;
        let ops = rand_len(&mut rng, 50, 400);
        for _ in 0..ops {
            match rng.next_below(3) {
                0 => {
                    let line = LineAddr::new(rng.next_below(32));
                    let latency = 1 + rng.next_below(200);
                    let pf = rng.chance(0.3);
                    let ready = match m.merge(line, cycle, pf) {
                        Some(ready) => ready, // already in flight: merged
                        None => m.allocate(line, cycle, cycle + latency, pf),
                    };
                    max_ready = max_ready.max(ready);
                }
                1 => {
                    let line = LineAddr::new(rng.next_below(32));
                    if let Some(ready) = m.merge(line, cycle, rng.chance(0.3)) {
                        assert!(ready > cycle, "case {case}: merged an expired entry");
                        max_ready = max_ready.max(ready);
                    }
                }
                _ => {
                    cycle += rng.next_below(100);
                }
            }
            assert!(
                m.in_flight(cycle) <= capacity,
                "case {case}: {} entries exceed capacity {capacity}",
                m.in_flight(cycle),
            );
        }
        // Drain: once the clock passes every fill, nothing may linger.
        let after = max_ready + 1;
        assert_eq!(
            m.in_flight(after),
            0,
            "case {case}: MSHR leaked entries past cycle {after}"
        );
        assert_eq!(
            m.outstanding_at(after),
            0,
            "case {case}: read-only probe disagrees"
        );
    }
}

#[test]
fn drrip_victims_in_range_and_psel_bounded() {
    for case in 0..CASES {
        let mut rng = rng_for(10, case);
        let n = rand_len(&mut rng, 1, 400);
        let mut p = Drrip::new(64, 8);
        let info = AccessInfo::demand(3, LineAddr::new(0), AccessClass::NonReplayData);
        for i in 0..n {
            let set = rng.next_below(64) as usize;
            match rng.next_below(3) {
                0 => p.on_fill(set, i % 8, &info),
                1 => p.on_hit(set, i % 8, &info),
                _ => {
                    let v = p.victim(set, &info);
                    assert!(v < 8, "case {case}: victim {v} out of range");
                }
            }
            assert!(p.psel() <= 1023, "case {case}: PSEL overflow");
        }
    }
}

#[test]
fn spatial_prefetchers_never_cross_pages() {
    for case in 0..CASES {
        let mut rng = rng_for(11, case);
        let n = rand_len(&mut rng, 1, 300);
        let mut spp = atc_prefetch::Spp::new();
        let mut bingo = atc_prefetch::Bingo::new();
        for _ in 0..n {
            let l = rng.next_below(1 << 20);
            let ctx = PrefetchContext {
                ip: 9,
                line: LineAddr::new(l),
                vaddr: VirtAddr::new(l << 6),
                hit: false,
            };
            for req in spp.on_access(&ctx).into_iter().chain(bingo.on_access(&ctx)) {
                match req {
                    PrefetchRequest::Phys(p) => {
                        assert_eq!(p.raw() >> 6, l >> 6, "case {case}: crossed a page boundary");
                    }
                    PrefetchRequest::Virt(_) => {
                        panic!("case {case}: spatial PF emitted virtual")
                    }
                }
            }
        }
    }
}

#[test]
fn isb_only_predicts_previously_seen_lines() {
    for case in 0..CASES {
        let mut rng = rng_for(12, case);
        let n = rand_len(&mut rng, 1, 300);
        let mut isb = atc_prefetch::Isb::new();
        let mut seen = HashSet::new();
        for _ in 0..n {
            let l = rng.next_below(4096);
            let ctx = PrefetchContext {
                ip: 5,
                line: LineAddr::new(l),
                vaddr: VirtAddr::new(l << 6),
                hit: false,
            };
            for req in isb.on_access(&ctx) {
                if let PrefetchRequest::Phys(p) = req {
                    assert!(
                        seen.contains(&p.raw()),
                        "case {case}: ISB invented line {}",
                        p.raw()
                    );
                }
            }
            seen.insert(l);
        }
    }
}

#[test]
fn trace_serialization_round_trips() {
    for case in 0..CASES {
        let mut rng = rng_for(13, case);
        let n = rand_len(&mut rng, 1, 200);
        let mut t = Trace::new();
        let mut originals = Vec::new();
        for _ in 0..n {
            let ip = rng.next_below(1 << 48);
            let addr = rng.next_below(1 << 57);
            let i = match rng.next_below(4) {
                0 => Instr::alu(ip),
                1 => Instr::load(ip, VirtAddr::new(addr)),
                2 => Instr::load_dep(ip, VirtAddr::new(addr)),
                _ => Instr::store(ip, VirtAddr::new(addr)),
            };
            t.push(&i);
            originals.push(i);
        }
        let mut buf = Vec::new();
        t.to_writer(&mut buf).unwrap();
        let t2 = Trace::from_reader(&buf[..]).unwrap();
        let mut rp = TraceReplay::new(t2);
        for orig in &originals {
            let got = rp.next_instr();
            assert_eq!(&got, orig, "case {case}: trace round-trip diverged");
        }
    }
}

#[test]
fn workload_memops_stay_in_57_bits() {
    use atc_workloads::{BenchmarkId, Scale};
    for seed in 0..CASES {
        for b in [BenchmarkId::Pr, BenchmarkId::Mcf, BenchmarkId::Canneal] {
            let mut wl = b.build(Scale::Test, seed);
            for _ in 0..500 {
                if let Some(MemOp::Load(a) | MemOp::Store(a)) = wl.next_instr().op {
                    assert!(
                        a.raw() < 1 << 57,
                        "seed {seed}: {} emitted a >57-bit VA",
                        b.name()
                    );
                }
            }
        }
    }
}

#[test]
fn histogram_count_and_sum_are_exact() {
    for case in 0..CASES {
        let mut rng = rng_for(14, case);
        let n = rand_len(&mut rng, 0, 200);
        let samples: Vec<u64> = (0..n).map(|_| rng.next_below(10_000)).collect();
        let mut h = Histogram::new(10, 50);
        for &s in &samples {
            h.record(s);
        }
        assert_eq!(h.count(), samples.len() as u64, "case {case}: count");
        assert_eq!(h.sum(), samples.iter().sum::<u64>(), "case {case}: sum");
        assert_eq!(
            h.max(),
            samples.iter().max().copied().unwrap_or(0),
            "case {case}: max"
        );
        let below = h.fraction_below(100);
        let expect = if samples.is_empty() {
            0.0
        } else {
            samples.iter().filter(|&&s| s < 100).count() as f64 / samples.len() as f64
        };
        assert!((below - expect).abs() < 1e-9, "case {case}: fraction_below");
    }
}

#[test]
fn telemetry_counters_reconcile_with_run_stats_exactly() {
    use atc_sim::{run_one, SimConfig, TelemetryConfig};
    use atc_workloads::{BenchmarkId, Scale};
    // Full simulator runs are costly; a handful of randomized
    // (benchmark, seed, length) cases still exercises every counter.
    let benches = [
        BenchmarkId::Mcf,
        BenchmarkId::Canneal,
        BenchmarkId::Pr,
        BenchmarkId::Xalancbmk,
    ];
    for case in 0..8 {
        let mut rng = rng_for(16, case);
        let bench = benches[rng.next_below(benches.len() as u64) as usize];
        let seed = rng.next_below(1 << 20);
        let measure = 20_000 + rng.next_below(20_000);
        let mut cfg = SimConfig::baseline();
        cfg.machine.stlb.entries = 256; // force walks at Test scale
        cfg.probes.telemetry = Some(TelemetryConfig {
            span_sample_every: 1 + rng.next_below(64),
            span_capacity: 128,
        });
        let s = run_one(&cfg, bench, Scale::Test, seed, 5_000, measure)
            .unwrap_or_else(|e| panic!("case {case}: {e}"));
        let t = s.telemetry.as_ref().expect("telemetry attached");
        let c = |name: &str| {
            t.counter(name)
                .unwrap_or_else(|| panic!("case {case}: counter {name} missing"))
        };

        // Telemetry and RunStats accumulate independently; they must
        // agree bit-for-bit.
        assert_eq!(c("core.instructions"), s.core.instructions, "case {case}");
        assert_eq!(c("core.cycles"), s.core.cycles, "case {case}");
        assert_eq!(c("walk.count"), s.walks, "case {case}");
        assert_eq!(
            c("replay.count"),
            s.service_replay.iter().sum::<u64>(),
            "case {case}"
        );
        for (i, lvl) in ["l1d", "l2c", "llc", "dram"].iter().enumerate() {
            assert_eq!(
                t.counter(&format!("walk.leaf_served.{lvl}")),
                Some(s.service_translation[i]),
                "case {case}: walk.leaf_served.{lvl}"
            );
            assert_eq!(
                t.counter(&format!("replay.served.{lvl}")),
                Some(s.service_replay[i]),
                "case {case}: replay.served.{lvl}"
            );
        }
        assert_eq!(
            c("stall.translation_cycles"),
            s.core.stalls.stlb_walk,
            "case {case}"
        );
        assert_eq!(
            c("stall.replay_cycles"),
            s.core.stalls.replay_data,
            "case {case}"
        );
        assert_eq!(
            c("stall.regular_cycles"),
            s.core.stalls.non_replay_data,
            "case {case}"
        );
        assert_eq!(c("tlb.dtlb.hits"), s.dtlb.hits, "case {case}");
        assert_eq!(c("tlb.stlb.misses"), s.stlb.misses, "case {case}");
        assert_eq!(c("psc.hits"), s.psc.0, "case {case}");
        assert_eq!(c("dram.requests"), s.dram.requests, "case {case}");
        for (lvl, cc) in [("l1d", &s.l1d), ("l2c", &s.l2c), ("llc", &s.llc)] {
            let hits = c(&format!("{lvl}.hits.translation"))
                + c(&format!("{lvl}.hits.replay"))
                + c(&format!("{lvl}.hits.regular"));
            let misses = c(&format!("{lvl}.misses.translation"))
                + c(&format!("{lvl}.misses.replay"))
                + c(&format!("{lvl}.misses.regular"));
            assert_eq!(misses, cc.total_misses(), "case {case}: {lvl} misses");
            assert_eq!(
                hits + misses,
                cc.total_accesses(),
                "case {case}: {lvl} accesses"
            );
        }
        assert_eq!(
            (c("l2c.pte_evict.dead"), c("l2c.pte_evict.total")),
            s.l2c_pte_evictions,
            "case {case}: l2c pte evictions"
        );
        assert_eq!(
            (c("llc.pte_evict.dead"), c("llc.pte_evict.total")),
            s.llc_pte_evictions,
            "case {case}: llc pte evictions"
        );
        // Walk/replay latency histograms observe one sample per event.
        let wh = t.histogram("walk.latency_cycles").expect("walk hist");
        assert_eq!(wh.count(), s.walks, "case {case}: walk latency samples");
        let rh = t.histogram("replay.latency_cycles").expect("replay hist");
        assert_eq!(
            rh.count(),
            s.service_replay.iter().sum::<u64>(),
            "case {case}: replay latency samples"
        );
    }
}
