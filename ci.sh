#!/usr/bin/env sh
# Offline CI gate: tier-1 build + tests, lints, and formatting.
#
# Everything runs with --offline against the vendored/registry-free
# dependency set — the workspace has no external crate dependencies, so
# a network-less container passes this script from a cold checkout.
#
#   ./ci.sh
set -eu

cd "$(dirname "$0")"

echo "==> cargo build --release (tier-1)"
cargo build --offline --workspace --release

echo "==> cargo test (tier-1)"
cargo test --offline --workspace -q

echo "==> cargo clippy -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "CI OK"
