#!/usr/bin/env sh
# Offline CI gate: tier-1 build + tests, lints, and formatting.
#
# Everything runs with --offline against the vendored/registry-free
# dependency set — the workspace has no external crate dependencies, so
# a network-less container passes this script from a cold checkout.
#
#   ./ci.sh
set -eu

cd "$(dirname "$0")"

echo "==> cargo build --release (tier-1)"
cargo build --offline --workspace --release

echo "==> cargo test (tier-1)"
cargo test --offline --workspace -q

echo "==> cargo clippy -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> bench smoke (sim_throughput --json BENCH_sim.json)"
# cargo runs bench binaries with cwd = the package root, so pass an
# absolute path to land the trajectory file at the repo root.
# sim_throughput records machine/baseline at the default batch AND at
# batch size 1 (machine/baseline@b1); check_bench_json fails the
# trajectory if the default batch drops below 0.7x the batch-1
# reference (the batched-core throughput gate), if attached streaming
# (machine/baseline+streaming) drops below 0.8x the detached baseline,
# or if any throughput entry carries a missing/non-finite/negative
# elems_per_s.
cargo bench --offline -p atc-bench --bench sim_throughput -- --samples 2 --json "$PWD/BENCH_sim.json"
# Perf floor: machine/baseline's best-case rate must stay at or above
# 0.85x the pre-event-wheel committed trajectory value (8,875,119
# elem/s median). The event-wheel PR targeted 1.5x here; the measured
# decomposition showed the seed loop was already within ~15% of the
# per-component floor on this hardware (DESIGN.md §10, EXPERIMENTS.md),
# so the gate holds the no-regression line instead. The 0.85 multiple
# is the observed noise band: across 8 back-to-back 10-sample runs the
# best-case rate ranged 7.86-9.47 M elem/s on this shared container,
# while a true regression to the seed loop (~7.0 M best-case) still
# lands below the floor. Raise the multiple if the floor ever moves.
cargo run --offline --release -p atc-bench --bin check_bench_json -- \
    --min-ratio "machine/baseline:8875119:0.85" BENCH_sim.json

echo "==> harness scaling bench (harness_scaling --append)"
# Suite wall-time at 1/2/4/8 workers, merged into the same trajectory
# document (--append replaces same-name results, keeps the rest).
# 3 samples so min/median are meaningful; --scaling-report prints the
# w1-vs-w4 jobs/s ratio without gating (CI containers are single-core,
# so a parallel speedup is not achievable there — see EXPERIMENTS.md).
cargo bench --offline -p atc-harness --bench harness_scaling -- \
    --samples 3 --append --json "$PWD/BENCH_sim.json"
cargo run --offline --release -p atc-bench --bin check_bench_json -- \
    --scaling-report BENCH_sim.json

echo "==> serve bench (serve_roundtrip --append)"
# Submit-to-complete latency through the resident daemon (protocol,
# admission, durable queued record, scheduler dispatch, result fetch)
# plus cold- vs warm-cache suite wall time, merged into the trajectory.
cargo bench --offline -p atc-experiments --bench serve_roundtrip -- \
    --samples 2 --append --json "$PWD/BENCH_sim.json"
cargo run --offline --release -p atc-bench --bin check_bench_json -- BENCH_sim.json

echo "==> suite smoke (full sweep catalog, checkpointed)"
SUITE="cargo run --offline --release -p atc-experiments --bin suite --"
SUITE_FLAGS="--scale test --warmup 2000 --instructions 20000"
rm -f target/ci-suite.jsonl
$SUITE $SUITE_FLAGS --jobs 4 --manifest target/ci-suite.jsonl --check \
    > target/ci-suite.out

echo "==> streaming smoke (--progress, telemetry.jsonl, trace.json)"
# The same sweep with the sampler attached: live progress on stderr at
# a 50 ms cadence, a checksummed atc-telemetry-stream-v1 file with at
# least 4 epochs whose delta sums must reconcile with the final
# cumulative snapshot (check_bench_json --stream), and a lifecycle
# trace-event timeline. Streaming must not perturb stdout: the tables
# stay byte-identical to the detached run above.
rm -f target/ci-stream.jsonl target/ci-telemetry.jsonl target/ci-trace.json
$SUITE $SUITE_FLAGS --jobs 4 --manifest target/ci-stream.jsonl --check \
    --progress=50ms --telemetry-out target/ci-telemetry.jsonl \
    --stream-epochs 4 --trace-out target/ci-trace.json \
    > target/ci-stream.out 2> /dev/null
diff target/ci-suite.out target/ci-stream.out
cargo run --offline --release -p atc-bench --bin check_bench_json -- \
    --stream --min-epochs 4 target/ci-telemetry.jsonl
test -s target/ci-trace.json

echo "==> batched-core determinism smoke (--jobs 1 vs --jobs 4 stdout)"
# Every suite job runs through the batched simulation core
# (Machine::run at DEFAULT_BATCH); identical stdout at 1 and 4 workers
# pins both scheduler determinism and the batched loop's bit-exact
# statistics end-to-end (the per-batch-size RunStats equivalence proof
# lives in crates/sim/tests/batch_equivalence.rs).
rm -f target/ci-det1.jsonl target/ci-det4.jsonl
$SUITE $SUITE_FLAGS --figures fig14,fig16 --jobs 1 \
    --manifest target/ci-det1.jsonl > target/ci-det1.out
$SUITE $SUITE_FLAGS --figures fig14,fig16 --jobs 4 \
    --manifest target/ci-det4.jsonl > target/ci-det4.out
diff target/ci-det1.out target/ci-det4.out

echo "==> lane determinism smoke (lane_mix --jobs 1 vs --jobs 4 stdout)"
# The partitioned-lane multicore engine runs one Machine (one event
# wheel) per lane on its own thread; lanes are independent and the
# merge is lane-ordered, so stdout must be byte-identical between the
# serial twin (--jobs 1) and concurrent lanes (--jobs 4).
LANE_MIX="cargo run --offline --release -p atc-experiments --bin lane_mix --"
$LANE_MIX --scale test --warmup 40000 --instructions 200000 --jobs 1 \
    --check > target/ci-lanes1.out
$LANE_MIX --scale test --warmup 40000 --instructions 200000 --jobs 4 \
    --check > target/ci-lanes4.out
diff target/ci-lanes1.out target/ci-lanes4.out

echo "==> suite resume smoke (kill-free: run half, resume the rest)"
# fig16 is 18 jobs (base + tempo x 9 benchmarks): run 5, then resume
# and require that exactly the 13 missing jobs execute.
rm -f target/ci-resume.jsonl
$SUITE $SUITE_FLAGS --figures fig16 --jobs 4 --max-jobs 5 \
    --manifest target/ci-resume.jsonl > /dev/null
$SUITE $SUITE_FLAGS --figures fig16 --jobs 4 --resume --check \
    --assert-executed 13 --manifest target/ci-resume.jsonl > /dev/null

echo "==> fault-plan smoke (seeded panic+transient+stall+torn, then heal)"
# A faulted pass may legitimately leave failed/panicked records (the
# point is that the process survives and records them); the healing
# pass resumes with faults off, re-executes every non-ok record, and
# must render stdout byte-identical to a clean run.
rm -f target/ci-fault.jsonl target/ci-clean.jsonl
$SUITE $SUITE_FLAGS --figures fig14,fig16 --jobs 4 \
    --manifest target/ci-clean.jsonl > target/ci-clean.out
$SUITE $SUITE_FLAGS --figures fig14,fig16 --jobs 4 --flush-every 1 \
    --retries 2 --backoff-ms 1 --deadline-ms 60000 \
    --fault-plan "7:panic@0.4,transient@0.4,stall5@0.4,torn@0.5" \
    --manifest target/ci-fault.jsonl > /dev/null || true
$SUITE $SUITE_FLAGS --figures fig14,fig16 --jobs 4 --resume --retry-failed \
    --check --manifest target/ci-fault.jsonl > target/ci-healed.out
diff target/ci-clean.out target/ci-healed.out

echo "==> SIGKILL resume smoke (kill -9 mid-sweep, resume byte-identical)"
# The crash point is fault-plan-chosen: fig16 schedules tempo/* jobs
# ahead of base/*, so stalling key=base/ parks the tail of the sweep
# while the tempo records flush (--flush-every 1); we kill -9 once the
# manifest shows progress, then --resume must complete the sweep with
# stdout byte-identical to the clean run above. The same scenario runs
# as a cargo test (crates/experiments/tests/crash_resume.rs); this
# smoke exercises it against the release binary with a real kill -9.
rm -f target/ci-sigkill.jsonl
cargo build --offline --release -q -p atc-experiments --bin suite
target/release/suite $SUITE_FLAGS --figures fig14,fig16 --jobs 2 \
    --flush-every 1 --fault-plan "42:stall30000@key=base/" \
    --manifest target/ci-sigkill.jsonl > /dev/null 2>&1 &
SUITE_PID=$!
tries=0
until [ -s target/ci-sigkill.jsonl ]; do
    tries=$((tries + 1))
    [ "$tries" -le 1200 ] || { echo "manifest never progressed"; exit 1; }
    sleep 0.1
done
kill -9 "$SUITE_PID"
wait "$SUITE_PID" 2>/dev/null || true
$SUITE $SUITE_FLAGS --figures fig14,fig16 --jobs 2 --resume --check \
    --manifest target/ci-sigkill.jsonl > target/ci-sigkill.out
diff target/ci-clean.out target/ci-sigkill.out

echo "==> telemetry smoke (telemetry_study --json target/telemetry_smoke.json)"
# Runs a small workload with telemetry attached; the example itself
# exits nonzero if telemetry counters fail to reconcile with RunStats,
# and the validator checks the atc-telemetry-v1 document it wrote.
cargo run --offline --release --example telemetry_study -- \
    --warmup 10000 --measure 60000 --json target/telemetry_smoke.json
cargo run --offline --release -p atc-bench --bin check_bench_json -- target/telemetry_smoke.json

echo "==> serve smoke (daemon kill -9 + restart, client byte-identity, tenants)"
# The resident-service acceptance gate:
#  1. daemon on --port 0 announces its ephemeral address on one stderr
#     line (scraped below), with a stall fault parking base/* jobs;
#  2. a suite client submits fig16 remotely, and once the tenant store
#     shows completed records the daemon is killed -9 mid-sweep;
#  3. a faultless daemon restarted on the same store recovers the
#     queue, the client re-submits, and its stdout must be
#     byte-identical to the in-process fig16 reference;
#  4. a second tenant runs fig14 on the same daemon — its jobs reuse
#     the streams fig16 captured, so the server's cross-tenant
#     cache-hit tally must be nonzero and per-tenant stores separate;
#  5. the wire log (spanning both daemon processes) must pass
#     check_bench_json --serve-log: sealed envelopes, sequence monotone
#     across the restart.
cargo build --offline --release -q -p atc-experiments --bin serve
rm -rf target/ci-serve-store target/ci-serve-log.jsonl target/ci-serve.err
$SUITE $SUITE_FLAGS --figures fig16 --jobs 2 \
    --manifest target/ci-serve-ref.jsonl > target/ci-serve-ref.out
rm -f target/ci-serve-ref.jsonl
target/release/serve $SUITE_FLAGS --figures fig14,fig16 --jobs 2 \
    --fault-plan "42:stall30000@key=base/" \
    --port 0 --store target/ci-serve-store \
    --serve-log target/ci-serve-log.jsonl 2> target/ci-serve.err &
SERVE_PID=$!
tries=0
until grep -q "atc-serve listening on " target/ci-serve.err 2>/dev/null; do
    tries=$((tries + 1))
    [ "$tries" -le 600 ] || { echo "serve never announced its address"; exit 1; }
    sleep 0.1
done
ADDR=$(sed -n 's/^atc-serve listening on //p' target/ci-serve.err | head -1)
target/release/suite $SUITE_FLAGS --figures fig16 --server "$ADDR" \
    --tenant ci > /dev/null 2>&1 &
CLIENT_PID=$!
tries=0
until grep -q '"status":"ok"' target/ci-serve-store/ci.jsonl 2>/dev/null; do
    tries=$((tries + 1))
    [ "$tries" -le 1200 ] || { echo "tenant store never progressed"; exit 1; }
    sleep 0.1
done
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
wait "$CLIENT_PID" 2>/dev/null || true
target/release/serve $SUITE_FLAGS --figures fig14,fig16 --jobs 2 \
    --port 0 --store target/ci-serve-store \
    --serve-log target/ci-serve-log.jsonl 2> target/ci-serve2.err &
SERVE_PID=$!
tries=0
until grep -q "atc-serve listening on " target/ci-serve2.err 2>/dev/null; do
    tries=$((tries + 1))
    [ "$tries" -le 600 ] || { echo "restarted serve never announced"; exit 1; }
    sleep 0.1
done
ADDR=$(sed -n 's/^atc-serve listening on //p' target/ci-serve2.err | head -1)
$SUITE $SUITE_FLAGS --figures fig16 --server "$ADDR" --tenant ci --check \
    > target/ci-serve.out
diff target/ci-serve-ref.out target/ci-serve.out
$SUITE $SUITE_FLAGS --figures fig14 --server "$ADDR" --tenant ci2 --check \
    > /dev/null
target/release/serve --connect "$ADDR" --status > target/ci-serve-status.txt
grep -q "^tenants 2$" target/ci-serve-status.txt
CROSS=$(sed -n 's/^cache\.cross_tenant_hits //p' target/ci-serve-status.txt)
[ "$CROSS" -ge 1 ] || { echo "no cross-tenant cache reuse (got $CROSS)"; exit 1; }
target/release/serve --connect "$ADDR" --shutdown
wait "$SERVE_PID"
cargo run --offline --release -p atc-bench --bin check_bench_json -- \
    --serve-log target/ci-serve-log.jsonl

echo "CI OK"
