#!/usr/bin/env sh
# Offline CI gate: tier-1 build + tests, lints, and formatting.
#
# Everything runs with --offline against the vendored/registry-free
# dependency set — the workspace has no external crate dependencies, so
# a network-less container passes this script from a cold checkout.
#
#   ./ci.sh
set -eu

cd "$(dirname "$0")"

echo "==> cargo build --release (tier-1)"
cargo build --offline --workspace --release

echo "==> cargo test (tier-1)"
cargo test --offline --workspace -q

echo "==> cargo clippy -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> bench smoke (sim_throughput --json BENCH_sim.json)"
# cargo runs bench binaries with cwd = the package root, so pass an
# absolute path to land the trajectory file at the repo root.
cargo bench --offline -p atc-bench --bench sim_throughput -- --samples 2 --json "$PWD/BENCH_sim.json"
cargo run --offline --release -p atc-bench --bin check_bench_json -- BENCH_sim.json

echo "==> telemetry smoke (telemetry_study --json target/telemetry_smoke.json)"
# Runs a small workload with telemetry attached; the example itself
# exits nonzero if telemetry counters fail to reconcile with RunStats,
# and the validator checks the atc-telemetry-v1 document it wrote.
cargo run --offline --release --example telemetry_study -- \
    --warmup 10000 --measure 60000 --json target/telemetry_smoke.json
cargo run --offline --release -p atc-bench --bin check_bench_json -- target/telemetry_smoke.json

echo "CI OK"
