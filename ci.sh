#!/usr/bin/env sh
# Offline CI gate: tier-1 build + tests, lints, and formatting.
#
# Everything runs with --offline against the vendored/registry-free
# dependency set — the workspace has no external crate dependencies, so
# a network-less container passes this script from a cold checkout.
#
#   ./ci.sh
set -eu

cd "$(dirname "$0")"

echo "==> cargo build --release (tier-1)"
cargo build --offline --workspace --release

echo "==> cargo test (tier-1)"
cargo test --offline --workspace -q

echo "==> cargo clippy -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> bench smoke (sim_throughput --json BENCH_sim.json)"
# cargo runs bench binaries with cwd = the package root, so pass an
# absolute path to land the trajectory file at the repo root.
cargo bench --offline -p atc-bench --bench sim_throughput -- --samples 2 --json "$PWD/BENCH_sim.json"
cargo run --offline --release -p atc-bench --bin check_bench_json -- BENCH_sim.json

echo "==> harness scaling bench (harness_scaling --append)"
# Suite wall-time at 1/2/4/8 workers, merged into the same trajectory
# document (--append replaces same-name results, keeps the rest).
# 3 samples so min/median are meaningful; --scaling-report prints the
# w1-vs-w4 jobs/s ratio without gating (CI containers are single-core,
# so a parallel speedup is not achievable there — see EXPERIMENTS.md).
cargo bench --offline -p atc-harness --bench harness_scaling -- \
    --samples 3 --append --json "$PWD/BENCH_sim.json"
cargo run --offline --release -p atc-bench --bin check_bench_json -- \
    --scaling-report BENCH_sim.json

echo "==> suite smoke (full sweep catalog, checkpointed)"
SUITE="cargo run --offline --release -p atc-experiments --bin suite --"
SUITE_FLAGS="--scale test --warmup 2000 --instructions 20000"
rm -f target/ci-suite.jsonl
$SUITE $SUITE_FLAGS --jobs 4 --manifest target/ci-suite.jsonl --check \
    > target/ci-suite.out

echo "==> suite determinism smoke (--jobs 1 vs --jobs 4 stdout)"
rm -f target/ci-det1.jsonl target/ci-det4.jsonl
$SUITE $SUITE_FLAGS --figures fig14,fig16 --jobs 1 \
    --manifest target/ci-det1.jsonl > target/ci-det1.out
$SUITE $SUITE_FLAGS --figures fig14,fig16 --jobs 4 \
    --manifest target/ci-det4.jsonl > target/ci-det4.out
diff target/ci-det1.out target/ci-det4.out

echo "==> suite resume smoke (kill-free: run half, resume the rest)"
# fig16 is 18 jobs (base + tempo x 9 benchmarks): run 5, then resume
# and require that exactly the 13 missing jobs execute.
rm -f target/ci-resume.jsonl
$SUITE $SUITE_FLAGS --figures fig16 --jobs 4 --max-jobs 5 \
    --manifest target/ci-resume.jsonl > /dev/null
$SUITE $SUITE_FLAGS --figures fig16 --jobs 4 --resume --check \
    --assert-executed 13 --manifest target/ci-resume.jsonl > /dev/null

echo "==> telemetry smoke (telemetry_study --json target/telemetry_smoke.json)"
# Runs a small workload with telemetry attached; the example itself
# exits nonzero if telemetry counters fail to reconcile with RunStats,
# and the validator checks the atc-telemetry-v1 document it wrote.
cargo run --offline --release --example telemetry_study -- \
    --warmup 10000 --measure 60000 --json target/telemetry_smoke.json
cargo run --offline --release -p atc-bench --bin check_bench_json -- target/telemetry_smoke.json

echo "CI OK"
